"""Chaos fabric: deterministic injection, integrity framing, recovery.

The contract under test (ISSUE acceptance criteria): every fault class
either lets the run complete *bit-identically* to the fault-free
baseline (via retry, checkpoint resume, or CPU fallback) or raises a
*typed* error before the deadline — never a hang — and identical
:class:`FaultPlan` seeds replay identical injection sequences and
completed-run trace signatures.
"""

import time

import numpy as np
import pytest

from repro.dist.driver import DistributedFmm
from repro.mpi import (
    CorruptMessage,
    SpmdError,
    run_spmd,
    run_spmd_resilient,
    wait_all,
)
from repro.mpi.comm import _TAG_COLL
from repro.mpi.faults import (
    Fault,
    FaultPlan,
    RankCrash,
    RetryPolicy,
)
from repro.perf.trace import TraceRecorder


def _allreduce_body(comm):
    comm.barrier()
    return comm.allreduce(comm.rank + 1)


class TestFaultPlan:
    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(7, nranks=8)
        b = FaultPlan.random(7, nranks=8)
        assert a.faults == b.faults
        assert FaultPlan.random(8, nranks=8).faults != a.faults

    def test_for_attempt_retires_spent_faults(self):
        plan = FaultPlan(
            [
                Fault("crash", rank=0, attempts=2),
                Fault("bitflip", rank=1, op="send", attempts=1),
            ]
        )
        assert len(plan.for_attempt(0)) == 2
        assert len(plan.for_attempt(1)) == 1
        assert len(plan.for_attempt(2)) == 0

    def test_scaled_to_drops_out_of_range_ranks(self):
        plan = FaultPlan([Fault("crash", rank=5), Fault("crash", rank=1)])
        assert len(plan.scaled_to(4)) == 1

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="kind"):
            Fault("meteor", rank=0)
        with pytest.raises(ValueError, match="op='launch'"):
            Fault("gpu", rank=0, op="send")
        with pytest.raises(ValueError, match="op='send'"):
            Fault("bitflip", rank=0, op="recv")
        with pytest.raises(ValueError, match="phase name"):
            Fault("crash", rank=0, op="phase")


class TestTagValidation:
    @pytest.mark.parametrize("bad", [_TAG_COLL, _TAG_COLL + 3, 1 << 30])
    def test_user_tags_in_collective_space_rejected(self, bad):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=bad)
            else:
                comm.recv(0, tag=bad)

        with pytest.raises(SpmdError, match="allowed range") as ei:
            run_spmd(2, fn, timeout=30)
        assert isinstance(ei.value.__cause__, ValueError)

    def test_boundary_tag_is_allowed(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=_TAG_COLL - 1)
                return "sent"
            return comm.recv(0, tag=_TAG_COLL - 1)

        res = run_spmd(2, fn, timeout=30)
        assert res.values[1] == "x"


class TestIntegrity:
    def test_bitflip_raises_typed_crc_error(self):
        plan = FaultPlan([Fault("bitflip", rank=0, op="send", index=0, bit=3)])
        with pytest.raises(SpmdError, match="CRC") as ei:
            run_spmd(2, _allreduce_body, faults=plan, integrity=True, timeout=30)
        assert isinstance(ei.value.__cause__, CorruptMessage)

    def test_bitflip_without_integrity_can_pass_silently(self):
        # the framing is what converts silent corruption into a typed
        # error; without it the flipped payload reaches unpickling
        plan = FaultPlan([Fault("bitflip", rank=0, op="send", index=0, bit=3)])
        try:
            run_spmd(2, _allreduce_body, faults=plan, timeout=30)
        except SpmdError as exc:
            assert not isinstance(exc.__cause__, CorruptMessage)

    def test_drop_detected_as_sequence_gap(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=4)
                comm.send("second", 1, tag=4)
            else:
                comm.recv(0, tag=4)
                comm.recv(0, tag=4)

        plan = FaultPlan([Fault("drop", rank=0, op="send", index=0)])
        with pytest.raises(SpmdError, match="dropped or duplicated") as ei:
            run_spmd(2, fn, faults=plan, integrity=True, timeout=30)
        assert isinstance(ei.value.__cause__, CorruptMessage)

    def test_duplicate_detected_as_stale_sequence(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=4)
                comm.send("second", 1, tag=4)
            else:
                comm.recv(0, tag=4)
                comm.recv(0, tag=4)

        plan = FaultPlan([Fault("duplicate", rank=0, op="send", index=0)])
        with pytest.raises(SpmdError, match="dropped or duplicated") as ei:
            run_spmd(2, fn, faults=plan, integrity=True, timeout=30)
        assert isinstance(ei.value.__cause__, CorruptMessage)

    def test_ledger_charged_for_corrupt_bytes(self):
        """Charge-before-verify: the byte ledger and trace stay balanced
        even when the delivered payload is corrupt."""
        plan = FaultPlan([Fault("bitflip", rank=0, op="send", index=0, bit=3)])
        rec = TraceRecorder()

        def fn(comm):
            if comm.rank == 0:
                comm.send(b"payload", 1, tag=2)
            else:
                comm.recv(0, tag=2)

        with pytest.raises(SpmdError):
            run_spmd(2, fn, faults=plan, integrity=True, trace=rec, timeout=30)
        sends = rec.message_events(kind="send")
        recvs = rec.message_events(kind="recv")
        assert len(sends) == len(recvs) == 1
        assert sends[0].nbytes == recvs[0].nbytes


class TestStraggler:
    def test_modelled_delay_charged_to_named_phase(self):
        def fn(comm):
            with comm.profile.phase("work"):
                comm.barrier()

        plan = FaultPlan(
            [Fault("straggle", rank=1, op="phase", phase="work", seconds=3.0)]
        )
        t0 = time.monotonic()
        res = run_spmd(4, fn, faults=plan, timeout=30)
        assert time.monotonic() - t0 < 5.0  # modelled, not slept
        charged = res.profiles[1].events["work"].comm_seconds
        uncharged = res.profiles[0].events["work"].comm_seconds
        assert charged >= 3.0
        assert uncharged < 3.0  # only the straggler pays the delay
        assert len(res.fault_events) == 1
        assert res.fault_events[0].kind == "straggle"


class TestRetry:
    def test_transient_crash_converges(self):
        plan = FaultPlan([Fault("crash", rank=1, op="send", index=0, attempts=2)])
        res = run_spmd_resilient(
            4,
            _allreduce_body,
            faults=plan,
            policy=RetryPolicy(max_attempts=4),
            timeout=30,
        )
        assert res.values == [10, 10, 10, 10]
        assert res.attempts == 3
        # injections of the failed attempts are kept on the result
        assert [e.attempt for e in res.fault_events] == [0, 1]

    def test_budget_exhaustion_reraises_typed(self):
        plan = FaultPlan([Fault("crash", rank=0, op="send", index=0, attempts=99)])
        with pytest.raises(SpmdError) as ei:
            run_spmd_resilient(
                4,
                _allreduce_body,
                faults=plan,
                policy=RetryPolicy(max_attempts=2),
                timeout=30,
            )
        assert isinstance(ei.value.__cause__, RankCrash)

    def test_non_transient_error_not_retried(self):
        calls = []

        def fn(comm):
            if comm.rank == 0:
                calls.append(1)
                raise ValueError("logic bug")
            comm.barrier()

        with pytest.raises(SpmdError, match="logic bug"):
            run_spmd_resilient(2, fn, policy=RetryPolicy(max_attempts=5), timeout=30)
        assert len(calls) == 1

    def test_retry_span_recorded(self):
        plan = FaultPlan([Fault("crash", rank=0, op="send", index=0, attempts=1)])
        res = run_spmd_resilient(
            2, _allreduce_body, faults=plan, trace=True, timeout=30
        )
        assert res.attempts == 2
        retries = [
            e for e in res.trace.span_events() if e.phase.startswith("RECOVERY:retry")
        ]
        assert len(retries) == 1
        chaos = [
            e for e in res.trace.span_events() if e.phase == "CHAOS:crash"
        ]
        assert len(chaos) == 1


@pytest.mark.chaos
class TestCheckpointResume:
    P = 4
    N = 160

    def _body(self, pts):
        def body(comm, state):
            if "fmm" not in state:
                fmm = DistributedFmm(order=4, max_points_per_box=30)
                fmm.setup(comm, pts[comm.rank :: comm.size])
                state["fmm"] = fmm
                own = fmm.owned_points
                state["dens"] = np.sin(9.0 * own[:, 0]) + own[:, 1]
            else:
                fmm = state["fmm"]
                fmm.rebind(comm)
            return fmm.evaluate(state["dens"], resume=True)

        return body

    def test_resume_skips_upward_phases_bit_identically(self):
        pts = np.random.default_rng(3).random((self.N, 3))
        body = self._body(pts)
        base = run_spmd_resilient(self.P, body, rank_state=True, timeout=60)
        # crash in a downward phase, after the checkpoint was cut
        plan = FaultPlan(
            [Fault("crash", rank=1, op="phase", phase="D2T", attempts=1)]
        )
        res = run_spmd_resilient(
            self.P, body, faults=plan, rank_state=True, trace=True, timeout=60
        )
        assert res.attempts == 2
        for r in range(self.P):
            assert np.array_equal(res.values[r], base.values[r])
        resumes = res.trace.span_events(phase="RECOVERY:resume")
        assert len(resumes) == self.P  # every rank resumed together
        # the resumed attempt must not have re-run the upward sweep
        last_phases = res.profiles[0].events
        assert "COMM_exchange" not in last_phases
        assert "S2U" not in last_phases

    def test_checkpoint_phase_property(self):
        pts = np.random.default_rng(4).random((80, 3))

        def body(comm):
            fmm = DistributedFmm(order=4, max_points_per_box=30)
            phases = [fmm.checkpoint_phase]
            fmm.setup(comm, pts[comm.rank :: comm.size])
            phases.append(fmm.checkpoint_phase)
            dens = np.ones(fmm.owned_points.shape[0])
            fmm.evaluate(dens)
            phases.append(fmm.checkpoint_phase)
            return phases

        res = run_spmd(2, body, timeout=60)
        assert res.values[0] == [None, "setup", "upward"]

    def test_rebind_rejects_rank_change(self):
        pts = np.random.default_rng(5).random((60, 3))
        boxes = {}

        def body(comm):
            fmm = DistributedFmm(order=4, max_points_per_box=30)
            fmm.setup(comm, pts[comm.rank :: comm.size])
            boxes[comm.rank] = fmm

        run_spmd(2, body, timeout=60)

        def swap(comm):
            if comm.rank == 0:
                boxes[1].rebind(comm)

        with pytest.raises(SpmdError, match="rank-specific"):
            run_spmd(2, swap, timeout=60)


@pytest.mark.chaos
class TestGpuDegradation:
    def test_device_fault_falls_back_bit_identically(self):
        pts = np.random.default_rng(6).random((150, 3))
        dens = np.cos(5.0 * pts[:, 0])

        def body(comm, use_gpu=False):
            fmm = DistributedFmm(
                order=4, max_points_per_box=30, use_gpu=use_gpu
            )
            fmm.setup(comm, pts)
            own = fmm.owned_points
            d = np.cos(5.0 * own[:, 0])
            return fmm.evaluate(d)

        cpu = run_spmd(1, body, timeout=60)
        plan = FaultPlan([Fault("gpu", rank=0, op="launch", phase="*")])
        gpu = run_spmd(
            1, body, use_gpu=True, faults=plan, trace=True, timeout=60
        )
        assert np.array_equal(gpu.values[0], cpu.values[0])
        assert [e.kind for e in gpu.fault_events] == ["gpu"]
        fallbacks = [
            e.phase
            for e in gpu.trace.span_events()
            if e.phase.startswith("RECOVERY:gpu_fallback")
        ]
        # the first accelerated phase faults; every later one is degraded
        assert "RECOVERY:gpu_fallback:S2U" in fallbacks
        assert "RECOVERY:gpu_fallback:ULI" in fallbacks

    def test_targeted_phase_fault_degrades_only_from_there(self):
        pts = np.random.default_rng(7).random((120, 3))

        def body(comm):
            fmm = DistributedFmm(order=4, max_points_per_box=30, use_gpu=True)
            fmm.setup(comm, pts)
            d = np.ones(fmm.owned_points.shape[0])
            pot = fmm.evaluate(d)
            return pot, fmm.evaluator.gpu.failed

        plan = FaultPlan([Fault("gpu", rank=0, op="launch", phase="D2T")])
        res = run_spmd(1, body, faults=plan, trace=True, timeout=60)
        assert res.values[0][1] is True  # device dead after the fault
        fallbacks = {
            e.phase
            for e in res.trace.span_events()
            if e.phase.startswith("RECOVERY:gpu_fallback")
        }
        assert "RECOVERY:gpu_fallback:S2U" not in fallbacks  # ran on device
        assert "RECOVERY:gpu_fallback:D2T" in fallbacks
        assert "RECOVERY:gpu_fallback:ULI" in fallbacks  # dead afterwards


class TestAbortedSpans:
    def test_wedged_rank_spans_flushed_as_aborted(self, tmp_path):
        rec = TraceRecorder()

        def fn(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            with comm.profile.phase("napping"):
                time.sleep(8.0)  # wedged past abort + grace

        with pytest.raises(SpmdError, match="boom") as ei:
            run_spmd(2, fn, trace=rec, timeout=0.3)
        assert ei.value.wedged == (1,)
        spans = rec.span_events(rank=1, phase="napping")
        assert len(spans) == 1 and spans[0].aborted
        # the JSONL export of the failed run round-trips
        path = tmp_path / "failed.jsonl"
        rec.write_jsonl(str(path))
        back = TraceRecorder.read_jsonl(str(path))
        assert back.signature() == rec.signature()

    def test_exception_closes_span_as_aborted(self):
        rec = TraceRecorder()

        def fn(comm):
            if comm.rank == 0:
                with comm.profile.phase("doomed"):
                    raise OSError("mid-phase failure")
            comm.recv(0, tag=1)

        with pytest.raises(SpmdError, match="mid-phase"):
            run_spmd(2, fn, trace=rec, timeout=30)
        spans = rec.span_events(rank=0, phase="doomed")
        assert len(spans) == 1 and spans[0].aborted


@pytest.mark.chaos
class TestDeterminism:
    def test_identical_plans_replay_identical_event_sequences(self):
        plan = FaultPlan(
            [
                Fault("crash", rank=2, op="recv", index=1, attempts=1),
                Fault("straggle", rank=0, op="send", index=0, seconds=1.0,
                      attempts=9),
            ],
            seed=11,
        )

        def run_once():
            return run_spmd_resilient(
                4, _allreduce_body, faults=plan, timeout=30
            ).fault_events

        assert run_once() == run_once()

    def test_completed_run_trace_signatures_replay(self):
        plan = FaultPlan(
            [Fault("straggle", rank=1, op="phase", phase="coll", seconds=2.0)]
        )

        def fn(comm):
            with comm.profile.phase("coll"):
                comm.allreduce(comm.rank)

        def sig():
            res = run_spmd(4, fn, faults=plan, integrity=True, trace=True,
                           timeout=30)
            return res.trace.signature()

        assert sig() == sig()


class TestCrashMidWaitAll:
    """Crashes landing *inside* an in-flight ``wait_all``.

    The matrix requirement: for every victim rank at p in {2, 5, 8} a
    crash fired at a nonblocking-request completion (``op="wait"``) must
    surface as a typed :class:`SpmdError` caused by :class:`RankCrash` —
    zero hangs — because ``abort_all`` wakes every peer still blocked in
    ``Request.wait``.
    """

    @staticmethod
    def _ring_body(comm):
        r, p = comm.rank, comm.size
        sreq = comm.isend(("dens", r), (r + 1) % p, tag=4)
        rreq = comm.irecv((r - 1) % p, tag=4)
        wait_all([sreq, rreq])  # injected crash fires at a completion here
        comm.barrier()
        return rreq.wait()

    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_crash_matrix_typed_never_hangs(self, p):
        for victim in range(p):
            plan = FaultPlan([Fault("crash", victim, op="wait", index=0)])
            t0 = time.monotonic()
            with pytest.raises(SpmdError) as ei:
                run_spmd(p, self._ring_body, faults=plan, timeout=30)
            assert time.monotonic() - t0 < 30  # aborted, not timed out
            assert ei.value.rank == victim
            assert isinstance(ei.value.__cause__, RankCrash)
            assert "wait" in str(ei.value.__cause__)

    def test_abort_wakes_ranks_blocked_in_wait_all(self):
        """Peers parked in ``Request.wait`` on never-sent messages wake."""
        plan = FaultPlan([Fault("crash", 0, op="wait", index=0)])

        def fn(comm):
            if comm.rank == 0:
                # crash at own completion, before serving anyone else
                comm.isend("x", 1, tag=1).wait()
                return None
            # these messages are never sent: only abort_all can end this
            wait_all([comm.irecv(0, tag=2), comm.irecv(0, tag=3)])

        t0 = time.monotonic()
        with pytest.raises(SpmdError) as ei:
            run_spmd(4, fn, faults=plan, timeout=30)
        assert time.monotonic() - t0 < 25  # woke well before the deadline
        assert ei.value.rank == 0
        assert ei.value.wedged == ()

    def test_resilient_retry_converges_after_wait_crash(self):
        plan = FaultPlan(
            [Fault("crash", 1, op="wait", index=0, attempts=1)]
        )
        res = run_spmd_resilient(
            4, self._ring_body, faults=plan, timeout=30,
            policy=RetryPolicy(max_attempts=3),
        )
        assert res.attempts == 2
        assert [v for v in res.values] == [("dens", 3), ("dens", 0),
                                           ("dens", 1), ("dens", 2)]
