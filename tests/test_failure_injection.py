"""Failure injection: the SPMD runtime must fail fast, never deadlock.

A rank dying mid-algorithm leaves peers blocked in ``recv``; the fabric's
abort flag must wake them with :class:`SpmdAborted` and the launcher must
surface the original error.
"""

import threading

import numpy as np
import pytest

from repro.dist.geometry import RankGeometry
from repro.dist.reduce_scatter import hypercube_reduce_scatter
from repro.mpi import run_spmd
from repro.mpi.comm import Fabric, SimComm, SpmdAborted
from repro.util import morton


class TestRankDeath:
    def test_death_during_collective(self):
        def fn(comm):
            if comm.rank == 2:
                raise OSError("node failure")
            comm.allreduce(1.0)

        with pytest.raises(RuntimeError, match="node failure"):
            run_spmd(4, fn, timeout=60)

    def test_death_mid_reduce_scatter(self):
        n_cells = 1 << (3 * morton.MAX_DEPTH)
        geometry = RankGeometry(np.linspace(0, n_cells, 5).astype(np.int64))

        def fn(comm):
            root = np.array([morton.ROOT], dtype=np.uint64)
            keys = morton.children(root)[0]
            dens = np.ones((8, 4))
            if comm.rank == 1:
                raise MemoryError("oom mid-round")
            hypercube_reduce_scatter(comm, geometry, keys, dens)

        with pytest.raises(RuntimeError, match="oom mid-round"):
            run_spmd(4, fn, timeout=60)

    def test_primary_error_reported_not_secondary(self):
        """Peers killed by the abort must not mask the root cause."""

        def fn(comm):
            if comm.rank == 0:
                raise ValueError("root cause")
            comm.recv(0, tag=5)  # will abort

        with pytest.raises(RuntimeError, match="root cause"):
            run_spmd(3, fn, timeout=60)

    def test_deadlock_detected_by_timeout(self):
        """A genuine deadlock (mismatched recv) hits the timeout guard."""

        def fn(comm):
            if comm.rank == 0:
                comm.recv(1, tag=99)  # rank 1 never sends

        with pytest.raises(TimeoutError, match="deadlock"):
            run_spmd(2, fn, timeout=3.0)


class TestFabricAbort:
    def test_blocked_get_raises_on_abort(self):
        fabric = Fabric(2)
        result = {}

        def blocked():
            try:
                fabric.get(0, src=1, tag=1)
            except SpmdAborted:
                result["aborted"] = True

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        fabric.abort.set()
        t.join(timeout=5.0)
        assert result.get("aborted"), "recv did not observe the abort flag"

    def test_message_delivered_before_abort_wins(self):
        fabric = Fabric(2)
        comm0 = SimComm(fabric, 0)
        comm1 = SimComm(fabric, 1)
        comm0.send("payload", 1, tag=2)
        fabric.abort.set()
        # already-delivered data is still readable
        assert comm1.recv(0, tag=2) == "payload"
