"""Failure injection: the SPMD runtime must fail fast, never deadlock.

A rank dying mid-algorithm leaves peers blocked in ``recv``;
``Fabric.abort_all`` must wake them *immediately* (flag + condition
notification, no poll tick) with :class:`SpmdAborted`, and the launcher
must surface the original error.  The run timeout is one shared deadline
across all ranks, not a per-thread budget.
"""

import threading
import time

import numpy as np
import pytest

from repro.dist.geometry import RankGeometry
from repro.dist.reduce_scatter import hypercube_reduce_scatter
from repro.mpi import SpmdError, run_spmd
from repro.mpi.comm import Fabric, SimComm, SpmdAborted
from repro.mpi.faults import Fault, FaultPlan, RankCrash
from repro.util import morton


class TestRankDeath:
    def test_death_during_collective(self):
        def fn(comm):
            if comm.rank == 2:
                raise OSError("node failure")
            comm.allreduce(1.0)

        with pytest.raises(RuntimeError, match="node failure"):
            run_spmd(4, fn, timeout=60)

    def test_death_mid_reduce_scatter(self):
        n_cells = 1 << (3 * morton.MAX_DEPTH)
        geometry = RankGeometry(np.linspace(0, n_cells, 5).astype(np.int64))

        def fn(comm):
            root = np.array([morton.ROOT], dtype=np.uint64)
            keys = morton.children(root)[0]
            dens = np.ones((8, 4))
            if comm.rank == 1:
                raise MemoryError("oom mid-round")
            hypercube_reduce_scatter(comm, geometry, keys, dens)

        with pytest.raises(RuntimeError, match="oom mid-round"):
            run_spmd(4, fn, timeout=60)

    def test_primary_error_reported_not_secondary(self):
        """Peers killed by the abort must not mask the root cause."""

        def fn(comm):
            if comm.rank == 0:
                raise ValueError("root cause")
            comm.recv(0, tag=5)  # will abort

        with pytest.raises(RuntimeError, match="root cause"):
            run_spmd(3, fn, timeout=60)

    def test_deadlock_detected_by_timeout(self):
        """A genuine deadlock (mismatched recv) hits the timeout guard."""

        def fn(comm):
            if comm.rank == 0:
                comm.recv(1, tag=99)  # rank 1 never sends

        with pytest.raises(TimeoutError, match="deadlock"):
            run_spmd(2, fn, timeout=3.0)

    def test_timeout_is_shared_deadline_not_per_rank(self):
        """All joins draw from one budget, so a run whose ranks *each*
        finish within ``timeout`` but whose total exceeds it still fails.

        With per-join timeouts (the old bug) this run completes quietly
        after ``~sum_r sleep(r)`` — up to ``nranks * timeout`` seconds —
        because every join restarts a fresh budget.
        """
        timeout = 0.6

        def fn(comm):
            time.sleep(0.25 * (comm.rank + 1))  # rank 5 sleeps 1.5s

        t0 = time.monotonic()
        with pytest.raises(TimeoutError, match="exceeded"):
            run_spmd(6, fn, timeout=timeout)
        elapsed = time.monotonic() - t0
        assert elapsed < 3.0, (
            f"deadline handling took {elapsed:.2f}s for a 0.6s budget"
        )

    def test_survivors_unblock_promptly_after_rank_death(self):
        """abort_all must wake every blocked receiver without a poll tick."""

        def fn(comm):
            if comm.rank == 0:
                raise OSError("node failure")
            comm.recv(0, tag=11)  # blocks until the abort

        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="node failure"):
            run_spmd(8, fn, timeout=60)
        assert time.monotonic() - t0 < 5.0


_COLLECTIVES = {
    "bcast": lambda comm: comm.bcast({"x": comm.rank}, root=0),
    "reduce": lambda comm: comm.reduce(float(comm.rank), root=0),
    "allgather": lambda comm: comm.allgather(comm.rank * 11),
    "alltoall": lambda comm: comm.alltoall(
        [(comm.rank, d) for d in range(comm.size)]
    ),
    "exscan": lambda comm: comm.exscan(comm.rank + 1),
}


class TestCollectiveCrashMatrix:
    """Every collective must fail *typed* — never hang — when any single
    rank crashes at the collective's entry, at every size of interest."""

    @pytest.mark.parametrize("name", sorted(_COLLECTIVES))
    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_single_rank_crash_every_index(self, p, name):
        coll = _COLLECTIVES[name]

        def fn(comm):
            with comm.profile.phase("coll"):
                coll(comm)

        deadline = 30.0
        for victim in range(p):
            plan = FaultPlan(
                [Fault("crash", rank=victim, op="phase", phase="coll")]
            )
            t0 = time.monotonic()
            with pytest.raises(RuntimeError, match="RankCrash") as ei:
                run_spmd(p, fn, faults=plan, timeout=deadline)
            assert time.monotonic() - t0 < deadline, (
                f"{name} p={p} victim={victim}: not typed before the deadline"
            )
            assert isinstance(ei.value.__cause__, RankCrash)
            assert ei.value.rank == victim


class TestErrorMasking:
    def test_rank_error_beats_timeout_when_a_peer_wedges(self):
        """A recorded rank error must be reported even when another rank
        sleeps past the deadline *and* the abort grace period — the old
        code raised TimeoutError, masking the root cause."""

        def fn(comm):
            if comm.rank == 0:
                raise ValueError("root cause")
            time.sleep(30.0)  # wedged: never observes the abort

        t0 = time.monotonic()
        with pytest.raises(SpmdError, match="root cause") as ei:
            run_spmd(2, fn, timeout=0.5)
        assert time.monotonic() - t0 < 15.0
        assert ei.value.rank == 0
        assert ei.value.wedged == (1,)
        assert "wedged" in str(ei.value)

    def test_pure_timeout_still_raises_timeout_error(self):
        def fn(comm):
            if comm.rank == 0:
                comm.recv(1, tag=3)  # never sent

        with pytest.raises(TimeoutError, match="deadlock") as ei:
            run_spmd(2, fn, timeout=1.0)
        assert "wedged" not in str(ei.value)  # recv unblocks on abort


class TestFabricAbort:
    def test_blocked_get_raises_on_abort_all(self):
        fabric = Fabric(2)
        result = {}
        started = threading.Event()

        def blocked():
            try:
                started.set()
                fabric.get(0, src=1, tag=1)
            except SpmdAborted:
                result["aborted"] = True

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        started.wait(timeout=5.0)
        time.sleep(0.05)  # let the getter reach cond.wait()
        t0 = time.monotonic()
        fabric.abort_all()
        t.join(timeout=5.0)
        elapsed = time.monotonic() - t0
        assert result.get("aborted"), "recv did not observe the abort"
        assert elapsed < 1.0, f"abort took {elapsed:.2f}s to unblock the recv"

    def test_abort_all_wakes_every_rank(self):
        fabric = Fabric(6)
        unblocked = []
        lock = threading.Lock()

        def blocked(rank):
            try:
                fabric.get(rank, src=(rank + 1) % 6, tag=1)
            except SpmdAborted:
                with lock:
                    unblocked.append(rank)

        threads = [
            threading.Thread(target=blocked, args=(r,), daemon=True)
            for r in range(6)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)
        fabric.abort_all()
        for t in threads:
            t.join(timeout=5.0)
        assert sorted(unblocked) == list(range(6))

    def test_message_delivered_before_abort_wins(self):
        fabric = Fabric(2)
        comm0 = SimComm(fabric, 0)
        comm1 = SimComm(fabric, 1)
        comm0.send("payload", 1, tag=2)
        fabric.abort.set()
        # already-delivered data is still readable
        assert comm1.recv(0, tag=2) == "payload"
