"""Tests for the simulated MPI runtime: semantics, ledgers, failure modes."""

import numpy as np
import pytest

from repro.mpi import KRAKEN, LOCAL, MachineModel, run_spmd


class TestMachineModel:
    def test_message_seconds(self):
        m = MachineModel("m", cpu_flops=1e9, latency=1e-6, bandwidth=1e9)
        assert m.message_seconds(0) == pytest.approx(1e-6)
        assert m.message_seconds(1e9) == pytest.approx(1.0 + 1e-6)

    def test_compute_seconds(self):
        assert KRAKEN.compute_seconds(500e6) == pytest.approx(1.0)


class TestPointToPoint:
    def test_ring_exchange(self):
        def ring(comm):
            r, p = comm.rank, comm.size
            comm.send(("payload", r), (r + 1) % p, tag=3)
            who, val = None, None
            val, who = comm.recv((r - 1) % p, tag=3)[::-1], None
            return val

        res = run_spmd(4, ring, timeout=60)
        assert [v[0] for v in res.values] == [3, 0, 1, 2]

    def test_numpy_payload_is_isolated(self):
        """Receiver mutations must not affect the sender's array."""

        def fn(comm):
            arr = np.arange(5)
            if comm.rank == 0:
                comm.send(arr, 1, tag=1)
                comm.barrier()
                return arr.copy()
            got = comm.recv(0, tag=1)
            got += 100
            comm.barrier()
            return got

        res = run_spmd(2, fn, timeout=60)
        np.testing.assert_array_equal(res.values[0], np.arange(5))
        np.testing.assert_array_equal(res.values[1], np.arange(5) + 100)

    def test_tag_selectivity(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        res = run_spmd(2, fn, timeout=60)
        assert res.values[1] == ("a", "b")

    def test_invalid_peer_rejected(self):
        def fn(comm):
            comm.send(1, 5)

        with pytest.raises(RuntimeError, match="invalid dest"):
            run_spmd(2, fn, timeout=60)


@pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
class TestCollectives:
    def test_bcast_all_roots(self, p):
        def fn(comm):
            out = []
            for root in range(comm.size):
                val = {"r": root} if comm.rank == root else None
                out.append(comm.bcast(val, root=root)["r"])
            return out

        res = run_spmd(p, fn, timeout=120)
        for v in res.values:
            assert v == list(range(p))

    def test_reduce_and_allreduce(self, p):
        def fn(comm):
            total = comm.reduce(np.array([comm.rank + 1.0]), root=0)
            every = comm.allreduce(comm.rank + 1.0)
            return total, every

        res = run_spmd(p, fn, timeout=120)
        expect = p * (p + 1) / 2
        assert res.values[0][0][0] == expect
        assert all(v[1] == expect for v in res.values)

    def test_gather_allgather(self, p):
        def fn(comm):
            g = comm.gather(comm.rank**2, root=p - 1)
            ag = comm.allgather(chr(ord("a") + comm.rank))
            return g, ag

        res = run_spmd(p, fn, timeout=120)
        assert res.values[p - 1][0] == [i**2 for i in range(p)]
        for v in res.values:
            assert v[1] == [chr(ord("a") + i) for i in range(p)]

    def test_alltoall(self, p):
        def fn(comm):
            out = comm.alltoall([(comm.rank, k) for k in range(comm.size)])
            return out

        res = run_spmd(p, fn, timeout=120)
        for r, v in enumerate(res.values):
            assert v == [(k, r) for k in range(p)]

    def test_exscan(self, p):
        def fn(comm):
            return comm.exscan(float(comm.rank + 1))

        res = run_spmd(p, fn, timeout=120)
        assert res.values[0] is None
        for r in range(1, p):
            assert res.values[r] == r * (r + 1) / 2

    def test_barrier_completes(self, p):
        def fn(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(run_spmd(p, fn, timeout=120).values)


class TestAlltoallNonPowerOfTwo:
    def test_every_block_arrives_exactly_once_p6(self):
        """Non-power-of-two sizes take the (r + i) % p partner path; every
        one of the p*p blocks must arrive exactly once at its destination."""
        p = 6

        def fn(comm):
            blocks = [f"{comm.rank}->{k}" for k in range(comm.size)]
            return comm.alltoall(blocks)

        res = run_spmd(p, fn, timeout=120)
        seen = [blk for got in res.values for blk in got]
        assert len(seen) == p * p
        assert len(set(seen)) == p * p, "a block arrived more than once"
        for r, got in enumerate(res.values):
            assert got == [f"{k}->{r}" for k in range(p)]


class TestLedger:
    def test_bytes_and_messages_counted(self):
        def fn(comm):
            comm.send(np.zeros(1000), (comm.rank + 1) % 2, tag=1)
            comm.recv((comm.rank + 1) % 2, tag=1)
            return comm.messages_sent, comm.bytes_sent

        res = run_spmd(2, fn, machine=LOCAL, timeout=60)
        msgs, nbytes = res.values[0]
        assert msgs == 1
        assert nbytes > 8000  # 1000 float64 + pickle framing

    def test_phase_attribution(self):
        def fn(comm):
            with comm.profile.phase("talk"):
                comm.sendrecv(np.zeros(100), comm.rank ^ 1, tag=2)
            return None

        res = run_spmd(2, fn, machine=LOCAL, timeout=60)
        ev = res.profiles[0].events["talk"]
        assert ev.comm_messages == 2  # one send + one recv charged
        assert ev.comm_seconds > 0

    def test_modeled_phase_seconds(self):
        def fn(comm):
            with comm.profile.phase("work"):
                comm.profile.add_flops(2e9)
            return None

        res = run_spmd(2, fn, machine=LOCAL, timeout=60)
        assert res.max_phase_seconds(LOCAL, "work") == pytest.approx(2.0)
        assert res.avg_phase_seconds(LOCAL, "work") == pytest.approx(2.0)


class TestFailures:
    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("kaboom")
            comm.recv(1, tag=9)

        with pytest.raises(RuntimeError, match="kaboom"):
            run_spmd(3, fn, timeout=60)

    def test_bad_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)
