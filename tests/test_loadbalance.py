"""Unit tests for work weights and leaf repartitioning."""

import numpy as np
import pytest

from repro.core.lists import build_lists
from repro.core.tree import build_tree
from repro.datasets import ellipsoid_surface
from repro.dist.loadbalance import leaf_work_weights, repartition_leaves
from repro.kernels import get_kernel
from repro.mpi import run_spmd
from repro.octree.build import leaf_point_counts, points_to_octree
from repro.util import morton


class TestLeafWorkWeights:
    @pytest.fixture(scope="class")
    def built(self):
        tree = build_tree(ellipsoid_surface(1500, seed=81), 25)
        lists = build_lists(tree)
        return tree, lists

    def test_nonnegative_and_finite(self, built):
        tree, lists = built
        leaf_nodes = tree.leaf_indices
        w = leaf_work_weights(tree, lists, get_kernel("laplace"), 152, leaf_nodes)
        assert np.all(w >= 0) and np.all(np.isfinite(w))
        assert w.shape == (leaf_nodes.size,)

    def test_list_sizes_drive_weights(self, built):
        """Weights must track the interaction-list work, not just points
        (V-list translations dominate at high surface order)."""
        tree, lists = built
        leaf_nodes = tree.leaf_indices
        w = leaf_work_weights(tree, lists, get_kernel("laplace"), 152, leaf_nodes)
        v_counts = lists.v.counts[leaf_nodes]
        order = np.argsort(w)
        k = max(leaf_nodes.size // 10, 1)
        assert v_counts[order[-k:]].mean() > v_counts[order[:k]].mean()

    def test_kernel_scales_weights(self, built):
        tree, lists = built
        leaf_nodes = tree.leaf_indices
        w_lap = leaf_work_weights(tree, lists, get_kernel("laplace"), 152, leaf_nodes)
        w_stk = leaf_work_weights(tree, lists, get_kernel("stokes"), 152, leaf_nodes)
        assert w_stk.sum() > 2.0 * w_lap.sum()


class TestRepartition:
    def _setup(self, comm, pts, q=25):
        from repro.dist.build import distributed_points_to_octree

        d = distributed_points_to_octree(comm, pts[comm.rank :: comm.size], q)
        begin, end = leaf_point_counts(d.point_keys, d.leaves)
        # synthetic weights: proportional to point counts squared
        w = (end - begin).astype(float) ** 2 + 1.0
        return d, w, begin, end

    def test_conservation(self):
        pts = ellipsoid_surface(2000, seed=82)

        def fn(comm):
            d, w, b, e = self._setup(comm, pts)
            leaves, points, keys = repartition_leaves(
                comm, d.leaves, w, d.points, d.point_keys, b, e
            )
            assert np.all(np.diff(keys.astype(np.int64)) >= 0)
            return leaves, len(points)

        res = run_spmd(4, fn, timeout=300)
        total_leaves = np.sort(np.concatenate([v[0] for v in res.values]))
        seq = points_to_octree(pts, 25)
        # leaves conserved as a set (they only moved)
        assert sum(v[1] for v in res.values) == 2000
        assert len(np.unique(total_leaves)) == total_leaves.size

    def test_weights_balance_improves(self):
        pts = ellipsoid_surface(3000, seed=83)

        def fn(comm):
            d, w, b, e = self._setup(comm, pts)
            before = float(w.sum())
            leaves, points, keys = repartition_leaves(
                comm, d.leaves, w, d.points, d.point_keys, b, e
            )
            nb, ne = leaf_point_counts(keys, leaves)
            after = float(((ne - nb).astype(float) ** 2 + 1.0).sum())
            return before, after

        res = run_spmd(4, fn, timeout=300)
        befores = np.array([v[0] for v in res.values])
        afters = np.array([v[1] for v in res.values])
        assert afters.max() / afters.mean() <= befores.max() / befores.mean()

    def test_zero_weights_noop(self):
        pts = ellipsoid_surface(800, seed=84)

        def fn(comm):
            d, w, b, e = self._setup(comm, pts)
            leaves, points, keys = repartition_leaves(
                comm, d.leaves, np.zeros_like(w), d.points, d.point_keys, b, e
            )
            return np.array_equal(leaves, d.leaves)

        assert all(run_spmd(2, fn, timeout=300).values)

    def test_block_partitioning_respects_blocks(self):
        pts = ellipsoid_surface(2000, seed=85)
        L = 2

        def fn(comm):
            d, w, b, e = self._setup(comm, pts)
            leaves, _, _ = repartition_leaves(
                comm, d.leaves, w, d.points, d.point_keys, b, e,
                partition_level=L,
            )
            lev = np.minimum(morton.level(leaves), L)
            return np.unique(morton.ancestor_at(leaves, lev))

        res = run_spmd(4, fn, timeout=300)
        seen = {}
        for rk, blocks in enumerate(res.values):
            for blk in blocks:
                assert seen.setdefault(int(blk), rk) == rk
