"""Pipelined (overlapped) vs sequential distributed evaluation.

The ISSUE acceptance criteria for the nonblocking runtime:

* pipelined ``DistributedFmm.evaluate`` is **bit-identical** to the
  sequential schedule at p in {1, 4, 8}, for fp64 and fp32 plans, with
  and without checkpoint resume — the overlap reorders *when* messages
  fly, never *what* is computed (X-list adds are deferred to their
  sequential position);
* per-rank ledger totals (``messages_sent`` / ``bytes_sent``) are
  unchanged between the two schedules — the same messages move, only
  earlier;
* a pipelined run emits ``INFLIGHT:*`` trace spans that
  :func:`repro.perf.model.overlap_report` turns into achieved-overlap
  seconds; a sequential run emits none.
"""

import numpy as np
import pytest

from repro.datasets import ellipsoid_surface, uniform_cube
from repro.dist.driver import DistributedFmm, distributed_fmm_rank
from repro.mpi import LOCAL, run_spmd
from repro.perf.model import (
    achieved_overlap_seconds,
    overlap_report,
    overlapped_eval_seconds,
)


def densfn(p):
    return np.sin(17 * p[:, 0]) + p[:, 2] * np.cos(9 * p[:, 1])


def _run(pts, p, **kwargs):
    res = run_spmd(
        p, distributed_fmm_rank, pts, densfn, timeout=560,
        machine=LOCAL, trace=True, **kwargs,
    )
    opts = np.concatenate([v[0] for v in res.values])
    opot = np.concatenate([v[1] for v in res.values])
    return opts, opot, res


FMM_KW = dict(kernel="laplace", order=4, max_points_per_box=30)


class TestBitIdentity:
    @pytest.mark.parametrize("p", [1, 4, 8])
    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_pipelined_equals_sequential(self, p, precision):
        pts = uniform_cube(1500, seed=41)
        kw = dict(FMM_KW, precision=precision)
        opts_s, pot_s, res_s = _run(pts, p, pipeline=False, **kw)
        opts_p, pot_p, res_p = _run(pts, p, pipeline=True, **kw)
        np.testing.assert_array_equal(opts_s, opts_p)
        assert np.array_equal(pot_s, pot_p)  # bitwise, not allclose
        # same messages moved, only earlier: per-rank ledgers unchanged
        for cs, cp in zip(res_s.comms, res_p.comms):
            assert cs.messages_sent == cp.messages_sent
            assert cs.bytes_sent == cp.bytes_sent

    @pytest.mark.parametrize("scheme", ["hypercube", "owner"])
    def test_both_reduce_schemes(self, scheme):
        pts = ellipsoid_surface(1200, seed=42)
        _, pot_s, _ = _run(pts, 4, pipeline=False, comm_scheme=scheme, **FMM_KW)
        _, pot_p, _ = _run(pts, 4, pipeline=True, comm_scheme=scheme, **FMM_KW)
        assert np.array_equal(pot_s, pot_p)

    def test_nonplan_path_bit_identical(self):
        # use_plan=False exercises the evaluator's non-plan xli_compute
        pts = uniform_cube(1000, seed=43)
        _, pot_s, _ = _run(pts, 4, pipeline=False, use_plan=False, **FMM_KW)
        _, pot_p, _ = _run(pts, 4, pipeline=True, use_plan=False, **FMM_KW)
        assert np.array_equal(pot_s, pot_p)


class TestCheckpointResume:
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_resume_matches_fresh_eval(self, pipeline):
        """Resume after the checkpoint cut is bit-identical under both
        schedules (a resumed evaluation skips the overlapped phases
        entirely — nothing is in flight at the checkpoint)."""
        pts = uniform_cube(1200, seed=44)

        def body(comm):
            mine = pts[comm.rank :: comm.size]
            fmm = DistributedFmm(pipeline=pipeline, **FMM_KW)
            fmm.setup(comm, mine)
            dens = densfn(fmm.owned_points)
            fresh = fmm.evaluate(dens)
            assert fmm.checkpoint_phase == "upward"
            resumed = fmm.evaluate(dens, resume=True)
            return fresh, resumed

        res = run_spmd(4, body, timeout=560)
        for fresh, resumed in res.values:
            assert np.array_equal(fresh, resumed)

    def test_resumed_equals_sequential_schedule(self):
        pts = uniform_cube(1200, seed=45)

        def body(comm, pipeline):
            mine = pts[comm.rank :: comm.size]
            fmm = DistributedFmm(pipeline=pipeline, **FMM_KW)
            fmm.setup(comm, mine)
            dens = densfn(fmm.owned_points)
            fmm.evaluate(dens)
            return fmm.evaluate(dens, resume=True)

        seq = run_spmd(4, body, False, timeout=560)
        pip = run_spmd(4, body, True, timeout=560)
        for a, b in zip(seq.values, pip.values):
            assert np.array_equal(a, b)


class TestInflightSpans:
    def test_pipelined_run_emits_inflight_spans(self):
        pts = uniform_cube(1500, seed=46)
        _, _, res_p = _run(pts, 4, pipeline=True, **FMM_KW)
        _, _, res_s = _run(pts, 4, pipeline=False, **FMM_KW)
        spans_p = [
            ev for ev in res_p.trace.span_events()
            if ev.phase.startswith("INFLIGHT:")
        ]
        spans_s = [
            ev for ev in res_s.trace.span_events()
            if ev.phase.startswith("INFLIGHT:")
        ]
        assert not spans_s  # sequential schedule keeps nothing in flight
        labels = {ev.phase for ev in spans_p}
        assert labels == {"INFLIGHT:COMM_exchange", "INFLIGHT:COMM_reduce"}
        # every rank flew both groups
        for r in range(4):
            assert len([ev for ev in spans_p if ev.rank == r]) == 2
        # the in-flight groups carried real messages at modelled cost
        assert all(ev.comm_messages > 0 and ev.comm_s > 0 for ev in spans_p)
        # and real compute ran while they were airborne
        assert any(ev.flops > 0 for ev in spans_p)

    def test_achieved_overlap_and_report(self):
        pts = uniform_cube(1500, seed=47)
        _, _, res_p = _run(pts, 4, pipeline=True, **FMM_KW)
        hidden = achieved_overlap_seconds(res_p.trace, LOCAL)
        assert set(hidden) == {0, 1, 2, 3}
        assert all(h > 0 for h in hidden.values())
        rep = overlap_report(res_p.profiles, LOCAL, trace=res_p.trace)
        assert rep["modelled_overlapped"] < rep["sequential"]
        assert rep["sequential"] - rep["hidden_max"] <= rep["achieved"]
        assert rep["achieved"] <= rep["sequential"]

    def test_modelled_overlap_matches_between_schedules(self):
        """Ledger equality makes the *model* schedule-independent: the
        modelled overlapped/sequential bounds agree whichever schedule
        actually ran."""
        pts = uniform_cube(1500, seed=48)
        _, _, res_s = _run(pts, 4, pipeline=False, **FMM_KW)
        _, _, res_p = _run(pts, 4, pipeline=True, **FMM_KW)
        ovl_s, seq_s = overlapped_eval_seconds(res_s.profiles, LOCAL)
        ovl_p, seq_p = overlapped_eval_seconds(res_p.profiles, LOCAL)
        assert ovl_s == pytest.approx(ovl_p, rel=1e-12)
        assert seq_s == pytest.approx(seq_p, rel=1e-12)
        assert ovl_p < seq_p  # overlap strictly helps at p = 4
