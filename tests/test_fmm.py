"""End-to-end accuracy tests of the sequential FMM against direct sums."""

import numpy as np
import pytest

from repro.core import Fmm
from repro.core.fft_m2l import FftM2L
from repro.core.operators import OperatorCache
from repro.datasets import ellipsoid_surface, plummer_cluster, uniform_cube
from repro.kernels import direct_sum, get_kernel
from repro.util.timer import PhaseProfile


def rel_err(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


class TestAccuracy:
    @pytest.mark.parametrize(
        "order,tol", [(4, 2e-3), (6, 2e-5), (8, 5e-7)]
    )
    def test_laplace_uniform_converges(self, order, tol):
        pts = uniform_cube(1500, seed=21)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(3).standard_normal(1500)
        f = Fmm(kern, order=order, max_points_per_box=35).evaluate(pts, dens)
        assert rel_err(f, direct_sum(kern, pts, pts, dens)) < tol

    @pytest.mark.parametrize("dist", ["uniform", "ellipsoid", "plummer"])
    def test_laplace_all_distributions(self, dist):
        maker = {
            "uniform": uniform_cube,
            "ellipsoid": ellipsoid_surface,
            "plummer": plummer_cluster,
        }[dist]
        pts = maker(1800, seed=4)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(8).standard_normal(1800)
        f = Fmm(kern, order=6, max_points_per_box=30).evaluate(pts, dens)
        assert rel_err(f, direct_sum(kern, pts, pts, dens)) < 5e-5

    def test_stokes(self):
        pts = uniform_cube(1000, seed=9)
        kern = get_kernel("stokes")
        dens = np.random.default_rng(1).standard_normal(3000)
        f = Fmm(kern, order=6, max_points_per_box=40).evaluate(pts, dens)
        assert rel_err(f, direct_sum(kern, pts, pts, dens)) < 1e-3
        assert f.shape == (3000,)

    def test_yukawa(self):
        pts = uniform_cube(1000, seed=9)
        kern = get_kernel("yukawa", lam=2.0)
        dens = np.random.default_rng(1).standard_normal(1000)
        f = Fmm(kern, order=6, max_points_per_box=40).evaluate(pts, dens)
        assert rel_err(f, direct_sum(kern, pts, pts, dens)) < 5e-5

    def test_kernel_by_name(self):
        pts = uniform_cube(400, seed=2)
        dens = np.ones(400)
        f = Fmm("laplace", order=4, max_points_per_box=20).evaluate(pts, dens)
        assert np.all(f > 0)  # positive charges: positive potential

    def test_q_parameter_insensitive_accuracy(self):
        """Accuracy must not depend on the points-per-box tuning knob."""
        pts = uniform_cube(1200, seed=6)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(2).standard_normal(1200)
        ref = direct_sum(kern, pts, pts, dens)
        for q in (15, 60, 300):
            f = Fmm(kern, order=6, max_points_per_box=q).evaluate(pts, dens)
            assert rel_err(f, ref) < 5e-5, f"q={q}"

    def test_all_points_in_one_leaf_is_direct(self):
        """Tiny N: tree is a single root leaf and FMM equals direct sum."""
        pts = uniform_cube(50, seed=3)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(5).standard_normal(50)
        f = Fmm(kern, order=4, max_points_per_box=64).evaluate(pts, dens)
        np.testing.assert_allclose(f, direct_sum(kern, pts, pts, dens), rtol=1e-12)


class TestM2LModes:
    def test_fft_equals_dense(self):
        pts = ellipsoid_surface(1200, seed=11)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(4).standard_normal(1200)
        f1 = Fmm(kern, order=6, max_points_per_box=25, m2l_mode="fft").evaluate(pts, dens)
        f2 = Fmm(kern, order=6, max_points_per_box=25, m2l_mode="dense").evaluate(pts, dens)
        assert rel_err(f1, f2) < 1e-10

    def test_fft_equals_dense_stokes(self):
        pts = uniform_cube(600, seed=12)
        kern = get_kernel("stokes")
        dens = np.random.default_rng(4).standard_normal(1800)
        f1 = Fmm(kern, order=4, max_points_per_box=25, m2l_mode="fft").evaluate(pts, dens)
        f2 = Fmm(kern, order=4, max_points_per_box=25, m2l_mode="dense").evaluate(pts, dens)
        assert rel_err(f1, f2) < 1e-10

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Fmm("laplace", m2l_mode="magic")

    def test_fft_translator_matches_dense_operator(self, rng):
        """Unit-level: FFT path reproduces the dense M2L matvec."""
        kern = get_kernel("laplace")
        order = 6
        ops = OperatorCache(kern, order)
        fft = FftM2L(kern, order)
        u = rng.standard_normal((1, ops.n_surf))
        for off in [(2, 0, 0), (3, -1, 2), (-2, -2, -2)]:
            dense = ops.m2l_dense(3, off) @ u[0]
            uhat = fft.forward(u)
            acc = fft.translate(fft.kernel_hat(3, off), uhat)
            out = fft.inverse(acc)[0]
            np.testing.assert_allclose(out, dense, rtol=1e-10, atol=1e-12)


class TestApiContract:
    def test_wrong_density_size(self):
        pts = uniform_cube(100, seed=1)
        with pytest.raises(ValueError, match=r"densities shape \(100,\)"):
            Fmm("stokes", order=4).evaluate(pts, np.zeros(100))

    def test_plan_reuse(self):
        pts = uniform_cube(800, seed=13)
        kern = get_kernel("laplace")
        fmm = Fmm(kern, order=4, max_points_per_box=30)
        plan = fmm.plan(pts)
        d1 = np.random.default_rng(0).standard_normal(800)
        d2 = np.random.default_rng(1).standard_normal(800)
        f1 = fmm.evaluate(pts, d1, plan=plan)
        f2 = fmm.evaluate(pts, d2, plan=plan)
        # linearity through a shared plan
        f12 = fmm.evaluate(pts, d1 + d2, plan=plan)
        np.testing.assert_allclose(f1 + f2, f12, rtol=1e-8, atol=1e-12)

    def test_profile_records_phases(self):
        pts = uniform_cube(600, seed=14)
        prof = PhaseProfile()
        Fmm("laplace", order=4, max_points_per_box=30).evaluate(
            pts, np.ones(600), profile=prof
        )
        for phase in ("tree", "lists", "S2U", "U2U", "VLI", "D2D", "D2T", "ULI"):
            assert phase in prof.events, phase
        assert prof.events["ULI"].flops > 0
        assert prof.events["VLI"].flops > 0

    def test_output_order_matches_input(self):
        """Permuting inputs permutes outputs identically."""
        pts = uniform_cube(500, seed=15)
        dens = np.random.default_rng(6).standard_normal(500)
        fmm = Fmm("laplace", order=4, max_points_per_box=25)
        f = fmm.evaluate(pts, dens)
        perm = np.random.default_rng(7).permutation(500)
        f_perm = fmm.evaluate(pts[perm], dens[perm])
        np.testing.assert_allclose(f_perm, f[perm], rtol=1e-9, atol=1e-12)


class TestSeparateTargets:
    """The evaluate_targets extension (beyond the paper's coincident sets)."""

    def test_matches_direct(self):
        src = uniform_cube(1500, seed=61)
        tgt = uniform_cube(400, seed=62)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(3).standard_normal(1500)
        fmm = Fmm(kern, order=6, max_points_per_box=30)
        out = fmm.evaluate_targets(src, dens, tgt)
        ref = direct_sum(kern, tgt, src, dens)
        assert rel_err(out, ref) < 5e-5

    def test_stokes_targets(self):
        src = uniform_cube(800, seed=63)
        tgt = ellipsoid_surface(200, seed=64)
        kern = get_kernel("stokes")
        dens = np.random.default_rng(4).standard_normal(2400)
        fmm = Fmm(kern, order=6, max_points_per_box=40)
        out = fmm.evaluate_targets(src, dens, tgt)
        ref = direct_sum(kern, tgt, src, dens)
        assert rel_err(out, ref) < 1e-3
        assert out.shape == (600,)

    def test_targets_in_empty_leaves(self):
        """Targets far from all sources still get the correct far field."""
        src = plummer_cluster(1200, seed=65)  # tight cluster
        rng = np.random.default_rng(66)
        tgt = rng.random((100, 3)) * 0.05 + np.array([0.9, 0.9, 0.05])
        kern = get_kernel("laplace")
        dens = rng.standard_normal(1200)
        fmm = Fmm(kern, order=6, max_points_per_box=25)
        out = fmm.evaluate_targets(src, dens, tgt)
        ref = direct_sum(kern, tgt, src, dens)
        assert rel_err(out, ref) < 5e-5

    def test_coincident_targets_match_evaluate(self):
        pts = uniform_cube(900, seed=67)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(5).standard_normal(900)
        fmm = Fmm(kern, order=4, max_points_per_box=30)
        a = fmm.evaluate(pts, dens)
        b = fmm.evaluate_targets(pts, dens, pts)
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_plan_reuse_with_targets(self):
        src = uniform_cube(700, seed=68)
        kern = get_kernel("laplace")
        fmm = Fmm(kern, order=4, max_points_per_box=40)
        plan = fmm.plan(src)
        d = np.random.default_rng(6).standard_normal(700)
        t1 = uniform_cube(50, seed=69)
        out1 = fmm.evaluate_targets(src, d, t1, plan=plan)
        out2 = fmm.evaluate_targets(src, 2 * d, t1, plan=plan)
        np.testing.assert_allclose(out2, 2 * out1, rtol=1e-10)


class TestBalancedTree:
    def test_accuracy_preserved_and_balanced(self):
        from repro.octree import is_2to1_balanced

        pts = ellipsoid_surface(1500, seed=91)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(7).standard_normal(1500)
        ref = direct_sum(kern, pts, pts, dens)
        fmm = Fmm(kern, order=6, max_points_per_box=25, balance_tree=True)
        plan = fmm.plan(pts)
        leaves = plan.tree.keys[plan.tree.is_leaf]
        assert is_2to1_balanced(leaves)
        f = fmm.evaluate(pts, dens, plan=plan)
        assert rel_err(f, ref) < 5e-5

    def test_balanced_tree_bounds_u_list_span(self):
        """With 2:1 balance, U-list members differ by at most one level."""
        pts = ellipsoid_surface(1500, seed=92)
        fmm = Fmm("laplace", order=4, max_points_per_box=20, balance_tree=True)
        plan = fmm.plan(pts)
        tree, lists = plan.tree, plan.lists
        for i in tree.leaf_indices:
            for j in lists.u.of(i):
                assert abs(int(tree.levels[i]) - int(tree.levels[j])) <= 1
