"""Incremental geometry updates: delta-sort, tree/list diffing, plan patching.

The contract under test is *bitwise identity*: every incremental path —
:func:`repro.sort.delta.delta_sort`, :func:`repro.core.tree.update_tree`,
:func:`repro.core.lists.update_lists`, :func:`repro.core.plan.patch_plan`
and the serving-layer ``update_geometry`` entry points — must produce
exactly what the from-scratch rebuild produces, for any motion pattern.
Speed is benchmarked elsewhere (``benchmarks/bench_dynamic_geometry.py``);
correctness is absolute here.
"""

import numpy as np
import pytest

from repro.core.fmm import Fmm
from repro.core.lists import build_lists, update_lists
from repro.core.tree import build_tree, update_tree
from repro.sort.delta import delta_sort
from repro.util import morton


def _perturb(rng, pts, frac, scale, localized=True):
    n = len(pts)
    m = max(1, int(round(frac * n)))
    if localized:
        center = pts[rng.integers(n)]
        d2 = ((pts - center) ** 2).sum(axis=1)
        moved = np.argpartition(d2, m - 1)[:m] if m < n else np.arange(n)
    else:
        moved = rng.choice(n, size=m, replace=False)
    new = pts.copy()
    new[moved] = np.clip(
        new[moved] + rng.normal(scale=scale, size=(m, 3)), 1e-9, 1 - 1e-9
    )
    return new, moved


# -- delta sort ---------------------------------------------------------------


@pytest.mark.parametrize("frac", [0.0, 0.02, 0.3, 1.0])
def test_delta_sort_matches_stable_argsort(rng, frac):
    n = 1500
    pts = rng.random((n, 3))
    keys = morton.encode_points(pts)
    order = np.argsort(keys, kind="stable")
    new, moved = _perturb(rng, pts, frac, 0.05, localized=False)
    ds = delta_sort(keys[order], order, new, moved)
    ref_keys = morton.encode_points(new)
    ref_order = np.argsort(ref_keys, kind="stable")
    np.testing.assert_array_equal(ds.order, ref_order)
    np.testing.assert_array_equal(ds.point_keys, ref_keys[ref_order])
    # perm maps each old sorted row to the new sorted row holding the
    # same original point, and keeps the sentinel fixed
    assert ds.perm[-1] == n
    np.testing.assert_array_equal(ref_order[ds.perm[:-1]], order)


def test_delta_sort_key_collisions(rng):
    # many points in one MAX_DEPTH cell: ties must break by point index
    n = 400
    pts = rng.random((n, 3))
    pts[::3] = pts[0]  # a third of the points share one cell exactly
    keys = morton.encode_points(pts)
    order = np.argsort(keys, kind="stable")
    new = pts.copy()
    moved = np.arange(0, n, 5)
    new[moved] = pts[1]  # moved points all collide into another shared cell
    ds = delta_sort(keys[order], order, new, moved)
    ref = np.argsort(morton.encode_points(new), kind="stable")
    np.testing.assert_array_equal(ds.order, ref)


# -- tree & lists -------------------------------------------------------------


@pytest.mark.parametrize("frac,scale", [(0.02, 0.01), (0.1, 0.2), (1.0, 0.3)])
def test_update_tree_matches_build_tree(rng, frac, scale):
    pts = rng.random((1800, 3))
    tree = build_tree(pts, 40)
    new, moved = _perturb(rng, pts, frac, scale)
    got, delta = update_tree(tree, new, 40, moved=moved)
    ref = build_tree(new, 40)
    np.testing.assert_array_equal(got.keys, ref.keys)
    np.testing.assert_array_equal(got.is_leaf, ref.is_leaf)
    np.testing.assert_array_equal(got.points, ref.points)
    np.testing.assert_array_equal(got.order, ref.order)
    got.validate()
    # clean nodes must have bitwise-identical point slices
    for i in np.flatnonzero(delta.node_clean):
        j = delta.old_index[i]
        assert j >= 0
        a = got.points[got.pt_begin[i]:got.pt_end[i]]
        b = tree.points[tree.pt_begin[j]:tree.pt_end[j]]
        np.testing.assert_array_equal(a, b)


def test_update_tree_rejects_shape_change(rng):
    pts = rng.random((500, 3))
    tree = build_tree(pts, 40)
    with pytest.raises(ValueError):
        update_tree(tree, rng.random((501, 3)), 40)


def test_update_lists_matches_build_lists(rng):
    pts = rng.random((1600, 3))
    tree = build_tree(pts, 30)
    lists = build_lists(tree)
    for frac, scale in [(0.02, 0.01), (0.15, 0.25)]:
        new, moved = _perturb(rng, pts, frac, scale)
        new_tree, delta = update_tree(tree, new, 30, moved=moved)
        got = update_lists(new_tree, tree, lists, delta)
        ref = build_lists(new_tree)
        for name in ("u", "v", "w", "x", "colleagues"):
            a, b = getattr(got, name), getattr(ref, name)
            np.testing.assert_array_equal(a.offsets, b.offsets, err_msg=name)
            np.testing.assert_array_equal(a.indices, b.indices, err_msg=name)


def test_update_lists_no_refinement_fast_path(rng):
    # motion inside one leaf: same octants, lists returned by identity
    pts = rng.random((1200, 3))
    tree = build_tree(pts, 64)
    lists = build_lists(tree)
    new = pts.copy()
    new[7] += 1e-9  # stays in its MAX_DEPTH cell's leaf
    new_tree, delta = update_tree(tree, new, 64)
    if not delta.refinement_changed:
        assert update_lists(new_tree, tree, lists, delta) is lists


# -- plan patching ------------------------------------------------------------


def _patch_and_compare(fmm, pts, new, moved, dens, rng):
    plan = fmm.plan(pts)
    eplan = fmm.compile_eval_plan(plan)
    new_plan, delta = fmm.update_plan(plan, new, moved=moved)
    patched = fmm.patch_eval_plan(eplan, plan, new_plan, delta=delta)
    ref_plan = fmm.plan(new)
    fresh = fmm.compile_eval_plan(ref_plan)
    assert patched.fingerprint == fresh.fingerprint
    assert patched.precision == fresh.precision
    out_p = fmm.evaluate(new, dens, plan=new_plan, eval_plan=patched)
    out_f = fmm.evaluate(new, dens, plan=ref_plan, eval_plan=fresh)
    np.testing.assert_array_equal(out_p, out_f)
    return patched


@pytest.mark.parametrize("kernel", ["laplace", "stokes", "yukawa"])
@pytest.mark.parametrize("precision", ["fp64", "fp32"])
def test_patched_plan_bit_identical(rng, kernel, precision):
    n = 1200
    pts = rng.random((n, 3))
    fmm = Fmm(kernel=kernel, order=4, max_points_per_box=30,
              precision=precision)
    new, moved = _perturb(rng, pts, 0.05, 0.02)
    dens = rng.standard_normal(n * fmm.kernel.source_dim)
    patched = _patch_and_compare(fmm, pts, new, moved, dens, rng)
    st = patched.patch_stats
    assert st.get("slots_reused", 0) + st.get("blocks_ref", 0) > 0


def test_patched_plan_refinement_change(rng):
    # collapse a blob into one octant (splits) and scatter another (merges)
    n = 1500
    pts = rng.random((n, 3))
    fmm = Fmm(kernel="laplace", order=4, max_points_per_box=25)
    new = pts.copy()
    moved = np.arange(0, 300)
    new[moved] = 0.31 + 0.01 * rng.random((300, 3))  # forces deep splits
    dens = rng.standard_normal(n)
    plan = fmm.plan(pts)
    _, delta = fmm.update_plan(plan, new, moved=moved)
    assert delta.refinement_changed
    _patch_and_compare(fmm, pts, new, moved, dens, rng)


def test_patched_plan_multi_rhs_and_chained_steps(rng):
    n = 1000
    pts = rng.random((n, 3))
    fmm = Fmm(kernel="laplace", order=4, max_points_per_box=30)
    plan = fmm.plan(pts)
    eplan = fmm.compile_eval_plan(plan)
    dens = rng.standard_normal((n, 3))
    for _ in range(3):  # patch the patched plan, repeatedly
        new, moved = _perturb(rng, pts, 0.04, 0.02)
        new_plan, delta = fmm.update_plan(plan, new, moved=moved)
        eplan = fmm.patch_eval_plan(eplan, plan, new_plan, delta=delta)
        pts, plan = new, new_plan
    ref = fmm.compile_eval_plan(plan)
    out_p = fmm.evaluate(pts, dens, plan=plan, eval_plan=eplan)
    out_f = fmm.evaluate(pts, dens, plan=plan, eval_plan=ref)
    np.testing.assert_array_equal(out_p, out_f)


# -- serving ------------------------------------------------------------------


def test_serve_engine_update_geometry(rng):
    from repro.serve.engine import ServeEngine

    n = 900
    pts = rng.random((n, 3))
    fmm = Fmm(kernel="laplace", order=4, max_points_per_box=30)
    dens = rng.standard_normal(n)
    with ServeEngine(n_workers=2) as eng:
        eng.register("m", fmm, pts, warm=True)
        new, _ = _perturb(rng, pts, 0.05, 0.02)
        info = eng.update_geometry("m", new)
        assert info["version"] == 1
        assert "fp64" in info["plans_patched"]
        out = eng.evaluate("m", dens)
        snap = eng.metrics.snapshot()
        assert snap["models"]["m"]["geometry"]["updates"] == 1
        assert eng.plan_stats()["m"]["geometry_version"] == 1
    ref_fmm = Fmm(kernel="laplace", order=4, max_points_per_box=30)
    ref_plan = ref_fmm.plan(new)
    expect = ref_fmm.evaluate(new, dens, plan=ref_plan,
                              eval_plan=ref_fmm.compile_eval_plan(ref_plan))
    np.testing.assert_array_equal(out, expect)


def test_serve_engine_swap_is_atomic_between_batches(rng):
    # a worker snapshots geometry once per batch: requests racing an
    # update must each see a consistent (points, plan) pair and return
    # one of the two valid answers, never a torn mix
    from repro.serve.engine import ServeEngine

    n = 700
    pts = rng.random((n, 3))
    fmm = Fmm(kernel="laplace", order=4, max_points_per_box=30)
    dens = rng.standard_normal(n)
    with ServeEngine(n_workers=2) as eng:
        eng.register("m", fmm, pts, warm=True)
        old = eng.evaluate("m", dens)
        new, _ = _perturb(rng, pts, 0.05, 0.02)
        reqs = [eng.submit("m", dens) for _ in range(4)]
        eng.update_geometry("m", new)
        reqs += [eng.submit("m", dens) for _ in range(4)]
        fresh = eng.evaluate("m", dens)
        for r in reqs:
            got = r.result(timeout=60.0)
            assert np.array_equal(got, old) or np.array_equal(got, fresh)


def test_dist_fmm_update_geometry_p4(rng):
    from repro.serve.dist_engine import DistServeEngine

    n = 1200
    pts = rng.random((n, 3))
    dens = rng.standard_normal(n)
    eng = DistServeEngine(nranks=4)
    eng.register("m", pts, placement="sharded", group=4,
                 kernel="laplace", order=4, max_points_per_box=30)
    new, _ = _perturb(rng, pts, 0.05, 0.02)
    info = eng.update_geometry("m", new)
    assert info["ranks_patched"] == 4
    out = eng.evaluate("m", dens)
    ref = DistServeEngine(nranks=4)
    ref.register("m", new, placement="sharded", group=4,
                 kernel="laplace", order=4, max_points_per_box=30)
    np.testing.assert_array_equal(out, ref.evaluate("m", dens))


def test_dist_checkpoint_cleared_after_geometry_update(rng):
    # a post-upward checkpoint from the old geometry must not resume
    # into the patched plan: update_geometry clears it, and the next
    # resume=True evaluate silently runs the full pipeline bit-identically
    from repro.dist.driver import DistributedFmm
    from repro.mpi.runtime import run_spmd

    n = 800
    pts = rng.random((n, 3))
    new, _ = _perturb(rng, pts, 0.05, 0.02)
    dens_by_rank = {}
    out = {}

    def body(comm):
        fmm = DistributedFmm(kernel="laplace", order=4, max_points_per_box=30)
        fmm.setup(comm, pts[comm.rank :: comm.size])
        dens = np.arange(fmm.let.n_owned_points, dtype=np.float64)
        fmm.evaluate(dens)  # cuts a checkpoint for the old geometry
        assert fmm._ckpt is not None
        info = fmm.update_geometry(new[comm.rank :: comm.size])
        assert info["patched"]
        assert fmm._ckpt is None
        dens2 = np.arange(fmm.let.n_owned_points, dtype=np.float64)
        dens_by_rank[comm.rank] = dens2
        out[comm.rank] = fmm.evaluate(dens2, resume=True)

    run_spmd(2, body)

    ref = {}

    def ref_body(comm):
        fmm = DistributedFmm(kernel="laplace", order=4, max_points_per_box=30)
        fmm.setup(comm, new[comm.rank :: comm.size])
        ref[comm.rank] = fmm.evaluate(dens_by_rank[comm.rank])

    run_spmd(2, ref_body)
    for r in (0, 1):
        np.testing.assert_array_equal(out[r], ref[r])
