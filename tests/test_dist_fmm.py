"""End-to-end distributed FMM accuracy and equivalence tests."""

import numpy as np
import pytest

from repro.datasets import ellipsoid_surface, uniform_cube
from repro.dist.driver import distributed_fmm_rank
from repro.kernels import direct_sum, get_kernel
from repro.mpi import run_spmd


def _match(ref_pts, pts):
    """Row indices of ``pts`` inside ``ref_pts`` by exact coordinates."""
    dt = np.dtype([("x", "f8"), ("y", "f8"), ("z", "f8")])
    g = np.ascontiguousarray(ref_pts).view(dt).ravel()
    o = np.ascontiguousarray(pts).view(dt).ravel()
    order = np.argsort(g)
    pos = order[np.searchsorted(g[order], o)]
    assert np.array_equal(ref_pts[pos], pts)
    return pos


def _run_and_collect(pts, dens, p, **kwargs):
    res = run_spmd(p, distributed_fmm_rank, pts, dens, timeout=560, **kwargs)
    opts = np.concatenate([v[0] for v in res.values])
    opot = np.concatenate([v[1] for v in res.values])
    return opts, opot, res


def densfn(p):
    return np.sin(40 * p[:, 0]) + p[:, 2] * np.cos(23 * p[:, 1])


class TestDistributedAccuracy:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_uniform_laplace(self, p):
        pts = uniform_cube(1800, seed=31)
        kern = get_kernel("laplace")
        ref = direct_sum(kern, pts, pts, densfn(pts))
        opts, opot, _ = _run_and_collect(
            pts, densfn, p, kernel="laplace", order=6, max_points_per_box=30
        )
        assert len(opts) == len(pts)
        pos = _match(pts, opts)
        assert np.linalg.norm(opot - ref[pos]) / np.linalg.norm(ref) < 5e-5

    def test_ellipsoid_laplace(self):
        pts = ellipsoid_surface(1800, seed=32)
        kern = get_kernel("laplace")
        ref = direct_sum(kern, pts, pts, densfn(pts))
        opts, opot, _ = _run_and_collect(
            pts, densfn, 4, kernel="laplace", order=6, max_points_per_box=25
        )
        pos = _match(pts, opts)
        assert np.linalg.norm(opot - ref[pos]) / np.linalg.norm(ref) < 5e-5

    def test_stokes_distributed(self):
        pts = uniform_cube(900, seed=33)
        kern = get_kernel("stokes")

        def sdens(p):
            return np.stack(
                [np.sin(9 * p[:, 0]), p[:, 1], np.cos(7 * p[:, 2])], axis=1
            ).reshape(-1)

        ref = direct_sum(kern, pts, pts, sdens(pts))
        opts, opot, _ = _run_and_collect(
            pts, sdens, 4, kernel="stokes", order=6, max_points_per_box=40
        )
        pos = _match(pts, opts)
        ref_rows = ref.reshape(-1, 3)[pos].reshape(-1)
        assert np.linalg.norm(opot - ref_rows) / np.linalg.norm(ref) < 1e-3

    def test_density_array_input(self):
        pts = uniform_cube(1200, seed=34)
        kern = get_kernel("laplace")
        dens = densfn(pts)
        ref = direct_sum(kern, pts, pts, dens)
        opts, opot, _ = _run_and_collect(
            pts, dens, 4, kernel="laplace", order=6, max_points_per_box=30
        )
        pos = _match(pts, opts)
        assert np.linalg.norm(opot - ref[pos]) / np.linalg.norm(ref) < 5e-5


class TestSchemeEquivalence:
    def test_hypercube_equals_owner_exactly(self):
        pts = uniform_cube(1500, seed=35)
        out = {}
        for scheme in ("hypercube", "owner"):
            opts, opot, _ = _run_and_collect(
                pts,
                densfn,
                4,
                kernel="laplace",
                order=4,
                max_points_per_box=30,
                comm_scheme=scheme,
            )
            order = _match(pts, opts)
            full = np.empty(len(pts))
            full[order] = opot
            out[scheme] = full
        np.testing.assert_allclose(
            out["hypercube"], out["owner"], rtol=1e-10, atol=1e-14
        )

    def test_load_balance_preserves_result(self):
        pts = ellipsoid_surface(1500, seed=36)
        out = {}
        for lb in (False, True):
            opts, opot, _ = _run_and_collect(
                pts,
                densfn,
                4,
                kernel="laplace",
                order=4,
                max_points_per_box=25,
                load_balance=lb,
            )
            order = _match(pts, opts)
            full = np.empty(len(pts))
            full[order] = opot
            out[lb] = full
        np.testing.assert_allclose(out[False], out[True], rtol=1e-9, atol=1e-13)

    def test_load_balance_reduces_imbalance(self):
        pts = ellipsoid_surface(2500, seed=37)

        def imbalance(lb):
            _, _, res = _run_and_collect(
                pts,
                densfn,
                4,
                kernel="laplace",
                order=4,
                max_points_per_box=25,
                load_balance=lb,
            )
            flops = [
                sum(
                    prof.events[ph].flops
                    for ph in ("ULI", "VLI", "WLI", "XLI", "S2U", "U2U", "D2D", "D2T")
                    if ph in prof.events
                )
                for prof in res.profiles
            ]
            return max(flops) / (sum(flops) / len(flops))

        assert imbalance(True) <= imbalance(False) * 1.05


class TestDriverContract:
    def test_evaluate_before_setup_raises(self):
        from repro.dist.driver import DistributedFmm

        fmm = DistributedFmm()
        with pytest.raises(RuntimeError, match="setup"):
            fmm.evaluate(np.zeros(4))

    def test_bad_scheme_rejected(self):
        from repro.dist.driver import DistributedFmm

        with pytest.raises(ValueError, match="comm_scheme"):
            DistributedFmm(comm_scheme="telepathy")

    def test_wrong_density_size(self):
        pts = uniform_cube(600, seed=38)

        def fn(comm):
            from repro.dist.driver import DistributedFmm

            fmm = DistributedFmm(order=4, max_points_per_box=40)
            fmm.setup(comm, pts[comm.rank :: comm.size])
            fmm.evaluate(np.zeros(3))

        with pytest.raises(RuntimeError, match="densities size"):
            run_spmd(2, fn, timeout=120)

    def test_points_conserved_and_owned_once(self):
        pts = uniform_cube(1000, seed=39)
        opts, _, _ = _run_and_collect(
            pts, densfn, 4, kernel="laplace", order=4, max_points_per_box=40
        )
        assert len(opts) == len(pts)
        assert len(np.unique(opts, axis=0)) == len(np.unique(pts, axis=0))


class TestOddRankCounts:
    """Algorithm 3 needs 2^d ranks (as in the paper); other sizes must
    still produce correct results via the owner-based fallback."""

    @pytest.mark.parametrize("p", [3, 5, 6])
    def test_non_power_of_two(self, p):
        pts = uniform_cube(1200, seed=71)
        kern = get_kernel("laplace")
        ref = direct_sum(kern, pts, pts, densfn(pts))
        opts, opot, _ = _run_and_collect(
            pts, densfn, p, kernel="laplace", order=4, max_points_per_box=40
        )
        pos = _match(pts, opts)
        assert np.linalg.norm(opot - ref[pos]) / np.linalg.norm(ref) < 5e-3


class TestCoarsePartitioning:
    """The paper's suggested (untried) coarser-level repartitioning."""

    def test_result_unchanged(self):
        pts = ellipsoid_surface(1500, seed=72)
        kern = get_kernel("laplace")
        ref = direct_sum(kern, pts, pts, densfn(pts))
        opts, opot, _ = _run_and_collect(
            pts, densfn, 4,
            kernel="laplace", order=4, max_points_per_box=25,
            load_balance=True, partition_level=3,
        )
        pos = _match(pts, opts)
        assert np.linalg.norm(opot - ref[pos]) / np.linalg.norm(ref) < 2e-3

    def test_blocks_stay_whole(self):
        """All leaves sharing a level-L ancestor land on one rank."""
        from repro.util import morton

        pts = ellipsoid_surface(2000, seed=73)
        L = 3
        _, _, res = _run_and_collect(
            pts, densfn, 4,
            kernel="laplace", order=4, max_points_per_box=25,
            load_balance=True, partition_level=L,
        )
        owner_of_block = {}
        for rk, (_, _, fmm) in enumerate(res.values):
            tree = fmm.let.tree
            keys = tree.keys[fmm.let.owned_leaf]
            lev = np.minimum(morton.level(keys), L)
            for b in np.unique(morton.ancestor_at(keys, lev)):
                assert owner_of_block.setdefault(int(b), rk) == rk, (
                    f"block {b} split across ranks"
                )
