"""Integration: distributed FMM with per-rank virtual GPUs (paper Fig 6)."""

import numpy as np
import pytest

from repro.datasets import uniform_cube
from repro.dist.driver import distributed_fmm_rank
from repro.kernels import direct_sum, get_kernel
from repro.mpi import run_spmd


def densfn(p):
    return np.sin(21 * p[:, 0]) * p[:, 1] + np.cos(13 * p[:, 2])


class TestDistributedGpu:
    @pytest.fixture(scope="class")
    def reference(self):
        pts = uniform_cube(2000, seed=55)
        kern = get_kernel("laplace")
        return pts, direct_sum(kern, pts, pts, densfn(pts))

    def _run(self, pts, **kwargs):
        res = run_spmd(
            4,
            distributed_fmm_rank,
            pts,
            densfn,
            kernel="laplace",
            order=6,
            max_points_per_box=60,
            timeout=560,
            **kwargs,
        )
        opts = np.concatenate([v[0] for v in res.values])
        opot = np.concatenate([v[1] for v in res.values])
        dt = np.dtype([("x", "f8"), ("y", "f8"), ("z", "f8")])
        g = np.ascontiguousarray(pts).view(dt).ravel()
        o = np.ascontiguousarray(opts).view(dt).ravel()
        order = np.argsort(g)
        pos = order[np.searchsorted(g[order], o)]
        return opot, pos, res

    def test_gpu_distributed_accuracy(self, reference):
        pts, ref = reference
        opot, pos, res = self._run(pts, use_gpu=True)
        err = np.linalg.norm(opot - ref[pos]) / np.linalg.norm(ref)
        assert err < 5e-4  # single-precision device floor

    def test_gpu_wx_extension_accuracy(self, reference):
        pts, ref = reference
        opot, pos, _ = self._run(pts, use_gpu=True, gpu_wx=True)
        err = np.linalg.norm(opot - ref[pos]) / np.linalg.norm(ref)
        assert err < 5e-4

    def test_each_rank_has_own_device_ledger(self, reference):
        pts, _ = reference
        _, _, res = self._run(pts, use_gpu=True)
        for _, _, fmm in res.values:
            led = fmm.evaluator.gpu.ledger
            assert led.total_seconds() > 0
            assert led.kernel_flops.get("ULI", 0) > 0

    def test_wx_extension_moves_flops_to_device(self, reference):
        pts, _ = reference
        _, _, plain = self._run(pts, use_gpu=True)
        _, _, wx = self._run(pts, use_gpu=True, gpu_wx=True)
        led_plain = plain.values[0][2].evaluator.gpu.ledger
        led_wx = wx.values[0][2].evaluator.gpu.ledger
        assert led_plain.kernel_flops.get("WLI", 0) == 0
        assert led_wx.kernel_flops.get("WLI", 0) > 0
        # CPU-side W-list flops disappear accordingly
        cpu_plain = plain.profiles[0].events.get("WLI")
        cpu_wx = wx.profiles[0].events.get("WLI")
        assert cpu_plain is not None and cpu_plain.flops > 0
        assert cpu_wx is None or cpu_wx.flops == 0
