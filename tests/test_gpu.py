"""Tests for the virtual GPU: device model, translation, kernels, evaluator."""

import numpy as np
import pytest

from repro.core import build_lists, build_tree
from repro.core.evaluator import FmmEvaluator
from repro.datasets import ellipsoid_surface, uniform_cube
from repro.gpu import DeviceModel, GpuFmmEvaluator, VirtualGpu
from repro.gpu.kernels import pairwise_f32
from repro.gpu.translate import build_leaf_stream, build_u_stream
from repro.kernels import get_kernel
from repro.util.timer import PhaseProfile


class TestDeviceModel:
    def test_roofline(self):
        m = DeviceModel("d", peak_flops=1e12, mem_bandwidth=1e11,
                        pcie_bandwidth=1e9, launch_overhead=1e-5)
        # compute bound
        assert m.kernel_seconds(1e12, 1e9) == pytest.approx(1.0 + 1e-5)
        # bandwidth bound
        assert m.kernel_seconds(1e9, 1e12) == pytest.approx(10.0 + 1e-5)

    def test_transfers_charged(self):
        gpu = VirtualGpu()
        arr = gpu.to_device(np.zeros(1000, dtype=np.float64))
        assert arr.dtype == np.float32
        assert gpu.ledger.transfer_bytes["H2D"] == 4000
        back = gpu.to_host(arr)
        assert back.dtype == np.float64
        assert gpu.ledger.transfer_bytes["D2H"] == 4000

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            VirtualGpu(block_size=100)
        with pytest.raises(ValueError):
            VirtualGpu(block_size=16)


class TestPairwiseF32:
    def test_laplace_matches_double(self, rng):
        kern = get_kernel("laplace")
        t = rng.random((40, 3)).astype(np.float32)
        s = rng.random((30, 3)).astype(np.float32)
        d = rng.standard_normal(30).astype(np.float32)
        out = pairwise_f32(kern, t, s, d)
        ref = kern.matrix(t.astype(np.float64), s.astype(np.float64)) @ d
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-5

    def test_self_interaction_skipped_by_fmax_trick(self, rng):
        kern = get_kernel("laplace")
        pts = rng.random((10, 3)).astype(np.float32)
        d = rng.standard_normal(10).astype(np.float32)
        out = pairwise_f32(kern, pts, pts, d)
        ref = kern.matrix(pts.astype(np.float64), pts.astype(np.float64)) @ d
        assert np.all(np.isfinite(out))
        assert np.linalg.norm(out - ref) / (np.linalg.norm(ref) + 1e-30) < 1e-5

    def test_nan_padding_rows_produce_zero(self, rng):
        kern = get_kernel("laplace")
        t = np.full((4, 3), np.nan, dtype=np.float32)
        s = rng.random((5, 3)).astype(np.float32)
        out = pairwise_f32(kern, t, s, np.ones(5, dtype=np.float32))
        np.testing.assert_array_equal(out, 0.0)

    def test_stokes_fallback(self, rng):
        kern = get_kernel("stokes")
        t = rng.random((6, 3)).astype(np.float32)
        s = rng.random((4, 3)).astype(np.float32)
        d = rng.standard_normal(12).astype(np.float32)
        out = pairwise_f32(kern, t, s, d)
        ref = kern.matrix(t.astype(np.float64), s.astype(np.float64)) @ d.astype(
            np.float64
        )
        assert out.shape == (18,)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-5


class TestTranslation:
    @pytest.fixture(scope="class")
    def built(self):
        pts = uniform_cube(2000, seed=41)
        tree = build_tree(pts, 60)
        return tree, build_lists(tree)

    def test_u_stream_padding(self, built):
        tree, lists = built
        sel = tree.is_leaf & (tree.point_counts() > 0)
        stream = build_u_stream(tree, lists, 64, sel)
        sizes = np.diff(stream.tgt_offsets)
        assert np.all(sizes % 64 == 0)
        assert stream.tgt_valid.sum() == tree.point_counts()[stream.boxes].sum()
        # padding slots are NaN
        assert np.all(np.isnan(stream.tgt_points[~stream.tgt_valid]))
        assert not np.any(np.isnan(stream.tgt_points[stream.tgt_valid]))

    def test_u_stream_sources_match_lists(self, built):
        tree, lists = built
        sel = tree.is_leaf & (tree.point_counts() > 0)
        stream = build_u_stream(tree, lists, 64, sel)
        counts = tree.point_counts()
        for j, i in enumerate(stream.boxes[:20]):
            srcs = lists.u.of(i)
            expect = counts[srcs][counts[srcs] > 0].sum()
            got = stream.src_offsets[j + 1] - stream.src_offsets[j]
            assert got == expect

    def test_leaf_stream_geometry(self, built):
        tree, _ = built
        sel = tree.is_leaf & (tree.point_counts() > 0)
        stream = build_leaf_stream(tree, sel)
        np.testing.assert_allclose(
            stream.centers, tree.centers[stream.boxes], rtol=1e-6
        )
        assert stream.pt_offsets[-1] == tree.point_counts()[stream.boxes].sum()


class TestGpuEvaluator:
    @pytest.mark.parametrize("dist", ["uniform", "ellipsoid"])
    def test_matches_cpu_single_precision(self, dist):
        maker = {"uniform": uniform_cube, "ellipsoid": ellipsoid_surface}[dist]
        pts = maker(2000, seed=42)
        kern = get_kernel("laplace")
        dens = np.random.default_rng(7).standard_normal(2000)
        tree = build_tree(pts, 60)
        lists = build_lists(tree)
        sdens = dens[tree.order]
        p_cpu = FmmEvaluator(kern, 6).evaluate(tree, lists, sdens, PhaseProfile())
        p_gpu = GpuFmmEvaluator(kern, 6).evaluate(tree, lists, sdens, PhaseProfile())
        assert np.linalg.norm(p_gpu - p_cpu) / np.linalg.norm(p_cpu) < 5e-4

    def test_stokes_gpu(self):
        pts = uniform_cube(800, seed=43)
        kern = get_kernel("stokes")
        dens = np.random.default_rng(8).standard_normal(2400)
        tree = build_tree(pts, 80)
        lists = build_lists(tree)
        sdens = dens.reshape(-1, 3)[tree.order].reshape(-1)
        p_cpu = FmmEvaluator(kern, 6).evaluate(tree, lists, sdens, PhaseProfile())
        p_gpu = GpuFmmEvaluator(kern, 6).evaluate(tree, lists, sdens, PhaseProfile())
        assert np.linalg.norm(p_gpu - p_cpu) / np.linalg.norm(p_cpu) < 5e-4

    def test_ledger_has_all_accelerated_phases(self):
        pts = uniform_cube(1500, seed=44)
        kern = get_kernel("laplace")
        tree = build_tree(pts, 50)
        lists = build_lists(tree)
        ev = GpuFmmEvaluator(kern, 6)
        ev.evaluate(tree, lists, np.ones(1500)[tree.order], PhaseProfile())
        led = ev.gpu.ledger
        for ph in ("S2U", "VLI", "D2T", "ULI"):
            assert led.phase_seconds(ph) > 0, ph
            assert led.kernel_flops.get(ph, 0) > 0 or ph == "VLI"

    def test_translation_cost_is_minor(self):
        """The paper's claim: data-structure translation cost is minor."""
        pts = uniform_cube(3000, seed=45)
        kern = get_kernel("laplace")
        tree = build_tree(pts, 100)
        lists = build_lists(tree)
        prof = PhaseProfile()
        ev = GpuFmmEvaluator(kern, 6)
        ev.evaluate(tree, lists, np.ones(3000)[tree.order], prof)
        total_wall = sum(e.wall_seconds for e in prof.events.values())
        assert prof.events["translate"].wall_seconds < 0.5 * total_wall

    def test_padding_overhead_shrinks_with_q(self):
        """Small boxes waste more padded device work (Table III driver)."""
        pts = uniform_cube(4000, seed=46)
        kern = get_kernel("laplace")
        overhead = {}
        for q in (30, 500):
            tree = build_tree(pts, q)
            lists = build_lists(tree)
            ev = GpuFmmEvaluator(kern, 4)
            prof = PhaseProfile()
            ev.evaluate(tree, lists, np.ones(4000)[tree.order], prof)
            true_flops = prof.events["ULI"].flops  # CPU model: exact pairs
            # re-run CPU to get true pair flops
            cpu_prof = PhaseProfile()
            FmmEvaluator(kern, 4).evaluate(
                tree, lists, np.ones(4000)[tree.order], cpu_prof
            )
            overhead[q] = (
                ev.gpu.ledger.kernel_flops["ULI"] / cpu_prof.events["ULI"].flops
            )
        assert overhead[30] > overhead[500] >= 1.0
