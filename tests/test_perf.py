"""Tests for the performance model and report rendering."""

import pytest

from repro.mpi import LOCAL, MachineModel
from repro.perf.model import (
    aggregate,
    evaluation_phase_times,
    setup_seconds,
)
from repro.perf.report import format_table, phase_breakdown_table
from repro.util.timer import PhaseProfile


def make_profiles():
    p1, p2 = PhaseProfile(), PhaseProfile()
    p1.add_flops(1e9, phase="ULI")
    p1.add_message(1000, 0.5, phase="COMM")
    p2.add_flops(3e9, phase="ULI")
    p2.add_flops(1e9, phase="VLI")
    return [p1, p2]


class TestModel:
    def test_aggregate_max_avg(self):
        rows = aggregate(make_profiles(), LOCAL, "U-list", ["ULI"])
        assert rows.max_seconds == pytest.approx(3.0)
        assert rows.avg_seconds == pytest.approx(2.0)
        assert rows.max_flops == 3e9
        assert rows.avg_flops == 2e9

    def test_comm_seconds_included(self):
        rows = aggregate(make_profiles(), LOCAL, "Comm.", ["COMM"])
        assert rows.max_seconds == pytest.approx(0.5)
        assert rows.max_flops == 0.0

    def test_evaluation_phase_times_rows(self):
        rows = evaluation_phase_times(make_profiles(), LOCAL)
        names = [r.name for r in rows]
        assert names[0] == "Total eval"
        assert names[-1] == "Comp"
        for expected in ("Upward", "Comm.", "U-list", "V-list", "W-list",
                         "X-list", "Downward"):
            assert expected in names
        by = {r.name: r for r in rows}
        # total includes comm; comp excludes it
        assert by["Total eval"].max_seconds > by["Comp"].max_seconds - 1e-12
        assert by["Comp"].max_flops == by["Total eval"].max_flops

    def test_setup_seconds(self):
        prof = PhaseProfile()
        prof.add_flops(2e9, phase="tree")
        prof.add_message(100, 0.25, phase="let")
        out = setup_seconds([prof], LOCAL)
        assert out["tree"] == pytest.approx(2.0)
        assert out["let"] == pytest.approx(0.25)
        assert out["lists"] == 0.0

    def test_fft_rate_separate(self):
        m = MachineModel("m", cpu_flops=1e9, latency=0, bandwidth=1e9,
                         cpu_fft_flops=4e9)
        assert m.fft_seconds(4e9) == pytest.approx(1.0)
        assert m.compute_seconds(4e9) == pytest.approx(4.0)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, "x"], [22, "yy"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_phase_breakdown_table_format(self):
        rows = evaluation_phase_times(make_profiles(), LOCAL)
        out = phase_breakdown_table(rows, title="Table II")
        assert "Total eval" in out
        assert "Max. Time" in out
        assert "e+" in out or "e-" in out  # scientific notation
