"""Tests for surfaces, operator construction and homogeneity scaling."""

import numpy as np
import pytest

from repro.core import surfaces
from repro.core.operators import (
    OperatorCache,
    child_center_offset,
    level_half_width,
    regularized_pinv,
)
from repro.kernels import get_kernel


class TestSurfaces:
    @pytest.mark.parametrize("p", [4, 6, 8, 10])
    def test_point_count(self, p):
        assert surfaces.n_surface_points(p) == 6 * (p - 1) ** 2 + 2
        assert len(surfaces.surface_lattice(p)) == surfaces.n_surface_points(p)

    def test_min_order_enforced(self):
        with pytest.raises(ValueError):
            surfaces.surface_lattice(3)
        with pytest.raises(ValueError):
            surfaces.inner_scale(2)

    def test_lattice_on_boundary_only(self):
        ijk = surfaces.surface_lattice(6)
        on = (ijk == 0) | (ijk == 5)
        assert np.all(on.any(axis=1))

    def test_points_scale_and_center(self):
        c = np.array([0.3, 0.4, 0.5])
        pts = surfaces.surface_points(6, c, 0.1, 2.95)
        assert np.allclose(np.max(np.abs(pts - c)), 0.295)
        assert np.all(np.max(np.abs(pts - c), axis=1) >= 0.295 - 1e-12)

    def test_inner_scale_lattice_compatibility(self):
        """Surface spacing h = 2r/(p-2) must divide the box side 2r."""
        for p in (4, 6, 8):
            a = surfaces.inner_scale(p)
            spacing = 2.0 * a / (p - 1)  # in units of half-width r
            assert abs(round(2.0 / spacing) - 2.0 / spacing) < 1e-12

    def test_grid_indices_unique(self):
        idx = surfaces.surface_grid_indices(6)
        assert len(np.unique(idx)) == len(idx)
        assert idx.max() < 6**3


class TestPinv:
    def test_pinv_of_well_conditioned(self, rng):
        m = rng.random((10, 10)) + 10 * np.eye(10)
        p = regularized_pinv(m, 1e-12)
        np.testing.assert_allclose(p @ m, np.eye(10), atol=1e-8)

    def test_pinv_truncates(self):
        m = np.diag([1.0, 1e-3, 1e-12])
        p = regularized_pinv(m, 1e-6)
        assert p[2, 2] == 0.0
        assert p[1, 1] == pytest.approx(1e3)


class TestChildOffsets:
    def test_all_offsets_distinct(self):
        offs = {tuple(child_center_offset(k, 0.25)) for k in range(8)}
        assert len(offs) == 8
        for o in offs:
            assert set(np.abs(o)) == {0.25}

    def test_morton_bit_convention(self):
        # bit 2 = x, bit 1 = y, bit 0 = z
        np.testing.assert_allclose(child_center_offset(4, 1.0), [1, -1, -1])
        np.testing.assert_allclose(child_center_offset(1, 1.0), [-1, -1, 1])


@pytest.mark.parametrize("kname", ["laplace", "stokes", "yukawa"])
class TestOperatorAccuracy:
    """Each translation operator reproduces far fields of random sources."""

    def setup_ops(self, kname, order=6):
        kern = get_kernel(kname)
        return kern, OperatorCache(kern, order)

    def test_s2m_far_field(self, kname, rng):
        kern, ops = self.setup_ops(kname)
        lvl, r = 3, level_half_width(3)
        src = (rng.random((30, 3)) - 0.5) * 2 * r
        s = rng.standard_normal(30 * kern.source_dim)
        u = ops.uc2ue(lvl) @ (kern.matrix(ops.uc_points(lvl), src) @ s)
        far = np.array([[6 * r, r, 0.0], [0.0, -8 * r, 2 * r]])
        approx = kern.matrix(far, ops.ue_points(lvl)) @ u
        exact = kern.matrix(far, src) @ s
        assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 1e-3

    def test_m2m_preserves_far_field(self, kname, rng):
        kern, ops = self.setup_ops(kname)
        child_lvl = 4
        rc = level_half_width(child_lvl)
        for pos in (0, 7):
            off = child_center_offset(pos, rc)
            src = (rng.random((25, 3)) - 0.5) * 2 * rc + off
            s = rng.standard_normal(25 * kern.source_dim)
            u_c = ops.uc2ue(child_lvl) @ (
                kern.matrix(ops.uc_points(child_lvl, off), src) @ s
            )
            u_p = ops.m2m(child_lvl, pos) @ u_c
            far = np.array([[10 * rc, -3 * rc, 5 * rc]])
            approx = kern.matrix(far, ops.ue_points(child_lvl - 1)) @ u_p
            exact = kern.matrix(far, src) @ s
            assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 1e-3

    def test_m2l_l2t_chain(self, kname, rng):
        kern, ops = self.setup_ops(kname)
        lvl, r = 3, level_half_width(3)
        side = 2 * r
        src = (rng.random((30, 3)) - 0.5) * 2 * r
        s = rng.standard_normal(30 * kern.source_dim)
        u = ops.uc2ue(lvl) @ (kern.matrix(ops.uc_points(lvl), src) @ s)
        for off in [(3, 0, 0), (2, -2, 1), (-3, 3, -3)]:
            tgt_c = side * np.asarray(off, dtype=float)
            d = ops.dc2de(lvl) @ (ops.m2l_dense(lvl, off) @ u)
            tgt = (rng.random((15, 3)) - 0.5) * 1.8 * r + tgt_c
            approx = kern.matrix(tgt, ops.de_points(lvl, tgt_c)) @ d
            exact = kern.matrix(tgt, src) @ s
            assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 2e-3

    def test_l2l_chain(self, kname, rng):
        """Parent downward density propagates to children accurately."""
        kern, ops = self.setup_ops(kname)
        plvl = 3
        rp = level_half_width(plvl)
        # far sources relative to the parent box at the origin
        src = rng.random((30, 3)) * rp + np.array([8 * rp, 8 * rp, 8 * rp])
        s = rng.standard_normal(30 * kern.source_dim)
        # parent downward density via its check surface
        q = kern.matrix(ops.dc_points(plvl), src) @ s
        d_p = ops.dc2de(plvl) @ q
        clvl = plvl + 1
        pos = 6
        off = child_center_offset(pos, level_half_width(clvl))
        q_c = ops.l2l(clvl, pos) @ d_p
        d_c = ops.dc2de(clvl) @ q_c
        tgt = (rng.random((10, 3)) - 0.5) * 1.5 * level_half_width(clvl) + off
        approx = kern.matrix(tgt, ops.de_points(clvl, off)) @ d_c
        exact = kern.matrix(tgt, src) @ s
        assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 1e-3


class TestHomogeneityScaling:
    """Cached-and-scaled operators equal directly computed ones."""

    @pytest.mark.parametrize("kname", ["laplace", "stokes"])
    def test_scaled_equals_direct(self, kname):
        kern = get_kernel(kname)
        for lvl in (1, 4, 7):
            cached = OperatorCache(kern, 4)
            # compare against a cache tricked into computing literally
            literal = OperatorCache(kern, 4)
            literal.kernel = kern
            k_direct = kern.matrix(
                literal.uc_points(lvl), literal.ue_points(lvl)
            )
            from repro.core.operators import regularized_pinv

            p_direct = regularized_pinv(k_direct, cached.rcond)
            np.testing.assert_allclose(
                cached.uc2ue(lvl), p_direct, rtol=1e-10, atol=1e-30
            )

    def test_m2m_level_independent_for_homogeneous(self):
        kern = get_kernel("laplace")
        ops = OperatorCache(kern, 4)
        np.testing.assert_allclose(ops.m2m(2, 3), ops.m2m(6, 3))

    def test_yukawa_levels_differ(self):
        kern = get_kernel("yukawa", lam=5.0)
        ops = OperatorCache(kern, 4)
        a, b = ops.m2m(2, 3), ops.m2m(5, 3)
        assert not np.allclose(a, b)
