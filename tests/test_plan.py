"""Tests for the plan-compiled evaluation engine (:mod:`repro.core.plan`).

The load-bearing invariant: a plan-based apply is **bit-identical** to the
legacy per-call path — same batches, same operation order, same floats.
That is what lets `DistributedFmm` swap plans in under resilient retries
and what keeps the chaos-matrix replay checks meaningful.
"""

import numpy as np
import pytest

from repro.core import Fmm, PlanMismatchError, PlanScopes, tree_fingerprint
from repro.datasets import uniform_cube
from repro.dist.driver import DistributedFmm
from repro.kernels import LaplaceGradientKernel
from repro.mpi import run_spmd

N = 2000
SEED = 7


def _points(n=N, seed=SEED):
    return uniform_cube(n, seed=seed)


def _setup(kernel="laplace", order=4, q=40, n=N, **kw):
    fmm = Fmm(kernel, order=order, max_points_per_box=q, **kw)
    pts = _points(n)
    plan = fmm.plan(pts)
    rng = np.random.default_rng(SEED)
    dens = rng.standard_normal(n * fmm.kernel.source_dim)
    srt = dens.reshape(-1, fmm.kernel.source_dim)[plan.tree.order].reshape(-1)
    return fmm, plan, srt


@pytest.mark.parametrize("kernel", ["laplace", "stokes", "yukawa"])
def test_plan_bit_identical(kernel):
    fmm, plan, dens = _setup(kernel)
    ev = fmm.evaluator
    ref = ev.evaluate(plan.tree, plan.lists, dens, use_plan=False).copy()
    ep = ev.compile_plan(plan.tree, plan.lists)
    out = ev.evaluate(plan.tree, plan.lists, dens, plan=ep)
    assert np.array_equal(ref, out)


def test_plan_bit_identical_gradient_eval_kernel():
    fmm, plan, dens = _setup(eval_kernel=LaplaceGradientKernel())
    ev = fmm.evaluator
    ref = ev.evaluate(plan.tree, plan.lists, dens, use_plan=False).copy()
    ep = ev.compile_plan(plan.tree, plan.lists)
    out = ev.evaluate(plan.tree, plan.lists, dens, plan=ep)
    assert np.array_equal(ref, out)


def test_plan_bit_identical_dense_m2l():
    fmm, plan, dens = _setup(m2l_mode="dense")
    ev = fmm.evaluator
    ref = ev.evaluate(plan.tree, plan.lists, dens, use_plan=False).copy()
    ep = ev.compile_plan(plan.tree, plan.lists)
    out = ev.evaluate(plan.tree, plan.lists, dens, plan=ep)
    assert np.array_equal(ref, out)


def test_plan_bit_identical_without_matrix_cache():
    """Budget misses fall back to per-apply kernel evaluation, same floats."""
    fmm, plan, dens = _setup()
    ev = fmm.evaluator
    ref = ev.evaluate(plan.tree, plan.lists, dens, use_plan=False).copy()
    ep = ev.compile_plan(plan.tree, plan.lists, cache_matrices=False)
    assert ep.matrix_bytes() == 0
    out = ev.evaluate(plan.tree, plan.lists, dens, plan=ep)
    assert np.array_equal(ref, out)


def test_plan_scoped_ownership_masks():
    """A plan compiled with node masks matches legacy scoped phases."""
    fmm, plan, dens = _setup()
    ev = fmm.evaluator
    tree, lists = plan.tree, plan.lists
    rng = np.random.default_rng(3)
    scope = rng.random(tree.n_nodes) < 0.7
    state_a = ev.allocate(tree)
    state_b = ev.allocate(tree)
    ep = ev.compile_plan(
        tree, lists,
        scopes=PlanScopes(s2u=scope, u2u=scope, vli=scope, xli=scope,
                          d2d=scope, wli=scope, d2t=scope, uli=scope),
    )
    assert ep.scoped
    from repro.util.timer import PhaseProfile

    pa, pb = PhaseProfile(), PhaseProfile()
    ev.s2u(tree, dens, state_a, pa, scope=scope)
    ev.s2u(tree, dens, state_b, pb, plan=ep)
    ev.u2u(tree, state_a, pa, scope=scope)
    ev.u2u(tree, state_b, pb, plan=ep)
    ev.vli(tree, lists, state_a, pa, scope=scope)
    ev.vli(tree, lists, state_b, pb, plan=ep)
    ev.xli(tree, lists, dens, state_a, pa, scope=scope)
    ev.xli(tree, lists, dens, state_b, pb, plan=ep)
    ev.d2d(tree, state_a, pa, scope=scope)
    ev.d2d(tree, state_b, pb, plan=ep)
    ev.wli(tree, lists, state_a, pa, scope=scope)
    ev.wli(tree, lists, state_b, pb, plan=ep)
    ev.d2t(tree, state_a, pa, scope=scope)
    ev.d2t(tree, state_b, pb, plan=ep)
    ev.uli(tree, lists, dens, state_a, pa, scope=scope)
    ev.uli(tree, lists, dens, state_b, pb, plan=ep)
    for key in ("up", "dcheck", "dequiv", "pot"):
        assert np.array_equal(state_a[key], state_b[key]), key


def test_wli_pattern_change_recompiles_bit_identically():
    """Zeroing densities changes the W-list up-gating; the lazy W-list
    schedule recompiles and results stay bit-identical."""
    fmm, plan, dens = _setup(n=2500, q=25)
    ev = fmm.evaluator
    tree, lists = plan.tree, plan.lists
    ep = ev.compile_plan(tree, lists)
    out1 = ev.evaluate(tree, lists, dens, plan=ep).copy()
    ref1 = ev.evaluate(tree, lists, dens, use_plan=False).copy()
    assert np.array_equal(ref1, out1)
    assert ep._wli is not None
    sig1 = ep._wli.sig.copy()
    # Zero the points of one W-list *leaf* source box: its up density
    # becomes exactly 0.0, flipping the keep mask for its pairs.
    counts = tree.point_counts()
    cols = ep.wli_cols
    src_leaves = cols[tree.is_leaf[cols] & (counts[cols] > 0)]
    assert src_leaves.size, "test tree has no leaf W-list sources"
    box = int(src_leaves[0])
    dens2 = dens.copy()
    dens2[tree.pt_begin[box] : tree.pt_end[box]] = 0.0
    out2 = ev.evaluate(tree, lists, dens2, plan=ep).copy()
    ref2 = ev.evaluate(tree, lists, dens2, use_plan=False).copy()
    assert np.array_equal(ref2, out2)
    assert not np.array_equal(sig1, ep._wli.sig)


def test_lazy_compile_on_second_call():
    fmm, plan, dens = _setup()
    ev = fmm.evaluator
    r1 = ev.evaluate(plan.tree, plan.lists, dens).copy()
    assert ev._plan_obj is None  # one-shot calls stay plan-free
    r2 = ev.evaluate(plan.tree, plan.lists, dens).copy()
    assert ev._plan_obj is not None
    r3 = ev.evaluate(plan.tree, plan.lists, dens).copy()
    assert np.array_equal(r1, r2) and np.array_equal(r1, r3)


def test_fmm_facade_plan_roundtrip():
    """Fmm.evaluate with an eagerly compiled eval_plan matches legacy."""
    fmm = Fmm("laplace", order=4, max_points_per_box=40)
    pts = _points()
    plan = fmm.plan(pts)
    dens = np.random.default_rng(SEED).standard_normal(N)
    ref = fmm.evaluate(pts, dens, plan=plan, use_plan=False)
    ep = fmm.compile_eval_plan(plan)
    out = fmm.evaluate(pts, dens, plan=plan, eval_plan=ep)
    assert np.array_equal(ref, out)


def test_plan_invalidation_fingerprint():
    """A plan compiled for tree A is rejected on a different tree B."""
    fmm, plan, dens = _setup()
    ep = fmm.evaluator.compile_plan(plan.tree, plan.lists)
    other = Fmm("laplace", order=4, max_points_per_box=70).plan(_points())
    assert tree_fingerprint(other.tree) != ep.fingerprint
    with pytest.raises(PlanMismatchError):
        fmm.evaluator.evaluate(
            other.tree, other.lists,
            dens[: other.tree.n_points], plan=ep,
        )
    # same tree object passes the identity fast-path
    ep.check(plan.tree)


@pytest.mark.parametrize("p", [1, 4])
def test_distributed_plan_bit_identical(p):
    points = _points(1600, seed=11)

    def body(comm, use_plan):
        fmm = DistributedFmm(order=4, max_points_per_box=40, use_plan=use_plan)
        fmm.setup(comm, points[comm.rank :: comm.size])
        pts = fmm.owned_points
        dens = np.sin(17.0 * pts[:, 0]) + pts[:, 2] * np.cos(11.0 * pts[:, 1])
        p1 = fmm.evaluate(dens)
        p2 = fmm.evaluate(dens)
        assert np.array_equal(p1, p2)
        assert (fmm._plan is not None) == use_plan
        return p1

    ref = run_spmd(p, body, False)
    new = run_spmd(p, body, True)
    for r in range(p):
        assert np.array_equal(ref.values[r], new.values[r])


def test_distributed_plan_compiles_once():
    """Trace setup:plan spans: exactly one compile per rank across
    consecutive evaluates (the cached plan is reused)."""
    points = _points(1600, seed=13)

    def body(comm):
        fmm = DistributedFmm(order=4, max_points_per_box=40)
        fmm.setup(comm, points[comm.rank :: comm.size])
        pts = fmm.owned_points
        dens = np.cos(5.0 * pts[:, 1])
        fmm.evaluate(dens)
        fmm.evaluate(dens)
        fmm.evaluate(2.0 * dens)  # new density, same plan
        return None

    res = run_spmd(4, body, trace=True)
    for r in range(4):
        spans = res.trace.span_events(rank=r, phase="setup:plan")
        assert len(spans) == 1, f"rank {r}: {len(spans)} setup:plan spans"
