"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "laplace" in out and "stokes" in out
        assert "kraken" in out and "tesla" in out

    def test_evaluate_with_check(self, capsys):
        rc = main([
            "evaluate", "--n", "1200", "--order", "4", "--q", "50",
            "--check", "60",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spot check" in out
        assert "rel err" in out
        # extract and bound the reported error
        err = float(out.rsplit("rel err", 1)[1])
        assert err < 1e-2

    def test_evaluate_distribution_choice(self, capsys):
        rc = main(["evaluate", "--n", "800", "--order", "4",
                   "--distribution", "ellipsoid"])
        assert rc == 0
        assert "ellipsoid" in capsys.readouterr().out

    def test_tune(self, capsys):
        rc = main(["tune", "--n", "2500", "--order", "4", "--sample", "2500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best q" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
