"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "laplace" in out and "stokes" in out
        assert "kraken" in out and "tesla" in out

    def test_evaluate_with_check(self, capsys):
        rc = main([
            "evaluate", "--n", "1200", "--order", "4", "--q", "50",
            "--check", "60",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spot check" in out
        assert "rel err" in out
        # extract and bound the reported error
        err = float(out.rsplit("rel err", 1)[1])
        assert err < 1e-2

    def test_evaluate_distribution_choice(self, capsys):
        rc = main(["evaluate", "--n", "800", "--order", "4",
                   "--distribution", "ellipsoid"])
        assert rc == 0
        assert "ellipsoid" in capsys.readouterr().out

    def test_evaluate_trace_writes_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "eval.jsonl"
        rc = main(["evaluate", "--n", "600", "--order", "4", "--trace", str(path)])
        assert rc == 0
        assert "trace:" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert lines, "no trace events written"
        assert all(json.loads(ln)["kind"] == "span" for ln in lines)

    def test_trace_subcommand(self, capsys, tmp_path):
        from repro.perf.trace import TraceRecorder

        path = tmp_path / "dist.jsonl"
        rc = main([
            "trace", "--p", "4", "--n", "1200", "--order", "4",
            "--phase", "COMM_reduce", "--out", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "Communication matrix" in out
        assert "Crit. path" in out
        assert "WARNING" not in out  # ledger/trace consistency holds
        # the JSONL round-trips and contains real message traffic
        back = TraceRecorder.read_jsonl(str(path))
        assert back.message_events(kind="send")
        assert back.per_rank_send_counts()

    def test_tune_q_sweep(self, capsys):
        rc = main(["tune", "--q-sweep", "--n", "2500", "--order", "4",
                   "--sample", "2500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best q" in out

    def test_tune_slo_search(self, capsys, tmp_path):
        store = tmp_path / "tune_store"
        rc = main([
            "tune", "--n", "1500", "--latency-ms", "30000",
            "--rtol", "1e-2", "--orders", "4", "--leaf-sizes", "64,144",
            "--precisions", "fp64", "--batch-shapes", "4:2",
            "--sample", "600", "--store", str(store),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chosen: o4q" in out
        assert "SLO met" in out
        assert "stored under" in out
        # the persisted entry round-trips through the store
        from repro.tune.store import TuneStore

        assert TuneStore(str(store)).entries()

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
