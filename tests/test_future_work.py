"""Tests for the paper's future-work items implemented as extensions:
GPU-accelerated sorting and communication/computation overlap modelling."""

import numpy as np
import pytest

from repro.datasets import uniform_cube
from repro.dist.driver import distributed_fmm_rank
from repro.gpu import VirtualGpu
from repro.gpu.sort import RADIX_BITS, gpu_radix_argsort
from repro.mpi import KRAKEN, run_spmd
from repro.perf.model import overlapped_eval_seconds
from repro.util import morton


class TestGpuSort:
    def test_sorts_correctly(self, rng):
        gpu = VirtualGpu()
        keys = rng.integers(0, 1 << 60, 5000).astype(np.uint64)
        order = gpu_radix_argsort(gpu, keys)
        sorted_keys = keys[order]
        assert np.all(sorted_keys[1:] >= sorted_keys[:-1])
        assert np.array_equal(np.sort(order), np.arange(5000))

    def test_stable_on_duplicates(self, rng):
        gpu = VirtualGpu()
        keys = rng.integers(0, 4, 200).astype(np.uint64)
        order = gpu_radix_argsort(gpu, keys)
        for v in range(4):
            pos = order[keys[order] == v]
            assert np.all(np.diff(pos) > 0), "stability violated"

    def test_device_charges_match_radix_model(self):
        gpu = VirtualGpu()
        n = 10_000
        keys = morton.encode_points(uniform_cube(n, seed=2))
        gpu_radix_argsort(gpu, keys)
        passes = -(-64 // RADIX_BITS)
        assert gpu.ledger.kernel_gbytes["sort"] == passes * n * 20
        assert gpu.ledger.transfer_bytes["sort"] == n * (8 + 8)
        assert gpu.ledger.phase_seconds("sort") > 0

    def test_faster_than_modeled_cpu_sort(self):
        """The motivation: device sort beats one CPU core on bandwidth."""
        gpu = VirtualGpu()
        n = 1_000_000
        keys = morton.encode_points(uniform_cube(50, seed=1))
        # charge-only comparison at n keys (reuse small array numerics)
        passes = -(-64 // RADIX_BITS)
        dev_seconds = gpu.model.kernel_seconds(
            passes * n * 4.0, passes * n * 20.0
        ) + gpu.model.transfer_seconds(n * 16.0)
        cpu_seconds = KRAKEN.compute_seconds(4.0 * n * np.log2(n))
        assert dev_seconds < cpu_seconds


class TestOverlapModel:
    def test_overlap_never_exceeds_sequential(self):
        pts = uniform_cube(1500, seed=41)

        def dens(p):
            return np.sin(5 * p[:, 0])

        res = run_spmd(
            4,
            distributed_fmm_rank,
            pts,
            dens,
            kernel="laplace",
            order=4,
            max_points_per_box=40,
            timeout=300,
        )
        ovl, seq = overlapped_eval_seconds(res.profiles, KRAKEN)
        assert 0.0 < ovl <= seq

    def test_pure_compute_profile_unchanged(self):
        from repro.util.timer import PhaseProfile

        prof = PhaseProfile()
        for ph in ("S2U", "VLI", "ULI"):
            prof.add_flops(1e9, phase=ph)
        ovl, seq = overlapped_eval_seconds([prof], KRAKEN)
        assert ovl == pytest.approx(seq)

    def test_comm_hides_behind_compute(self):
        from repro.util.timer import PhaseProfile

        prof = PhaseProfile()
        prof.add_flops(5e8, phase="S2U")  # 1 s at Kraken
        prof.add_message(100, 0.4, phase="COMM_exchange")  # hideable
        ovl, seq = overlapped_eval_seconds([prof], KRAKEN)
        assert seq == pytest.approx(1.4)
        assert ovl == pytest.approx(1.0)
