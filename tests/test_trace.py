"""Tests for the tracing subsystem: recorder, matrices, critical path.

The load-bearing invariant is ledger/trace consistency: for every run,
the per-rank send-event count and byte totals of the trace must equal the
``SimComm.messages_sent`` / ``bytes_sent`` ledgers, and (collectives
complete) every sent byte must be received.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import LOCAL, run_spmd
from repro.perf.commviz import (
    communication_matrix,
    critical_path,
    phase_matrices,
    render_matrix,
    render_phase_summary,
)
from repro.perf.trace import MessageEvent, SpanEvent, TraceRecorder

# one exerciser per collective, each returning something rank-dependent
COLLECTIVES = {
    "barrier": lambda comm: comm.barrier(),
    "bcast": lambda comm: comm.bcast(
        list(range(10)) if comm.rank == 0 else None, root=0
    ),
    "reduce": lambda comm: comm.reduce(np.full(4, comm.rank + 1.0), root=0),
    "allreduce": lambda comm: comm.allreduce(comm.rank + 1.0),
    "gather": lambda comm: comm.gather(comm.rank**2, root=0),
    "allgather": lambda comm: comm.allgather((comm.rank, "x" * comm.rank)),
    "alltoall": lambda comm: comm.alltoall(
        [(comm.rank, k) for k in range(comm.size)]
    ),
    "exscan": lambda comm: comm.exscan(float(comm.rank + 1)),
    # symmetric pairing (r ^ 1); the odd rank out skips
    "sendrecv_pair": lambda comm: comm.sendrecv(
        np.arange(comm.rank + 1), comm.rank ^ 1
    )
    if (comm.rank ^ 1) < comm.size
    else None,
}


def _assert_ledger_trace_consistent(res):
    tr = res.trace
    ledger_msgs = {c.rank: c.messages_sent for c in res.comms}
    ledger_bytes = {c.rank: c.bytes_sent for c in res.comms}
    traced_msgs = tr.per_rank_send_counts()
    traced_bytes = tr.per_rank_send_bytes()
    for r in ledger_msgs:
        assert traced_msgs.get(r, 0) == ledger_msgs[r]
        assert traced_bytes.get(r, 0) == ledger_bytes[r]
    sent = sum(ev.nbytes for ev in tr.message_events(kind="send"))
    recvd = sum(ev.nbytes for ev in tr.message_events(kind="recv"))
    assert sent == sum(ledger_bytes.values())
    assert sent == recvd, "collective completed but sent bytes != received bytes"
    assert len(tr.message_events(kind="send")) == len(
        tr.message_events(kind="recv")
    )


class TestLedgerTraceConsistency:
    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
    def test_collective_bytes_and_counts_match(self, name, p):
        res = run_spmd(p, COLLECTIVES[name], trace=True, timeout=120)
        _assert_ledger_trace_consistent(res)

    @given(st.integers(min_value=1, max_value=8), st.integers(0, 6))
    @settings(max_examples=12, deadline=None)
    def test_mixed_traffic_property(self, p, rounds):
        def fn(comm):
            for i in range(rounds):
                comm.allreduce(i)
                if comm.size > 1:
                    comm.send(np.zeros(8 * (i + 1)), (comm.rank + 1) % comm.size, tag=i)
                    comm.recv((comm.rank - 1) % comm.size, tag=i)
            return comm.messages_sent

        res = run_spmd(p, fn, trace=True, timeout=120)
        _assert_ledger_trace_consistent(res)

    def test_trace_includes_phase_attribution(self):
        def fn(comm):
            with comm.profile.phase("chat"):
                comm.allreduce(1.0)
            return None

        res = run_spmd(4, fn, trace=True, timeout=60)
        msgs = res.trace.message_events()
        assert msgs and all(ev.phase == "chat" for ev in msgs)

    def test_span_deltas_sum_to_ledger(self):
        """Re-entered phases emit one span each; deltas sum to the totals."""

        def fn(comm):
            for _ in range(3):
                with comm.profile.phase("again"):
                    comm.profile.add_flops(5.0)
                    comm.allreduce(1)
            return None

        res = run_spmd(2, fn, trace=True, timeout=60)
        for r, prof in enumerate(res.profiles):
            spans = res.trace.span_events(rank=r, phase="again")
            assert len(spans) == 3
            ev = prof.events["again"]
            assert sum(s.flops for s in spans) == pytest.approx(ev.flops)
            assert sum(s.comm_messages for s in spans) == ev.comm_messages
            assert sum(s.comm_bytes for s in spans) == pytest.approx(ev.comm_bytes)
            assert sum(s.comm_s for s in spans) == pytest.approx(ev.comm_seconds)


class TestTraceRecorder:
    def test_disabled_by_default(self):
        res = run_spmd(2, lambda comm: comm.allreduce(1), timeout=60)
        assert res.trace is None
        assert all(c.trace is None for c in res.comms)

    def test_seq_is_monotonic_per_rank(self):
        res = run_spmd(
            4, lambda comm: [comm.allreduce(i) for i in range(3)],
            trace=True, timeout=60,
        )
        for r in range(4):
            seqs = [
                ev.seq for ev in res.trace.message_events() if ev.rank == r
            ]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)

    def test_jsonl_roundtrip(self, tmp_path):
        res = run_spmd(
            3, lambda comm: comm.allgather(comm.rank), trace=True, timeout=60
        )
        path = tmp_path / "t.jsonl"
        n = res.trace.write_jsonl(str(path))
        assert n == len(res.trace.events)
        lines = path.read_text().splitlines()
        assert len(lines) == n
        for line in lines:
            obj = json.loads(line)
            assert obj["kind"] in ("send", "recv", "span")
        back = TraceRecorder.read_jsonl(str(path))
        assert back.events == res.trace.events

    def test_jsonl_append(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            res = run_spmd(2, lambda comm: comm.barrier(), trace=True, timeout=60)
            res.trace.write_jsonl(str(path), append=True)
        back = TraceRecorder.read_jsonl(str(path))
        assert len(back.events) == 2 * len(res.trace.events)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            TraceRecorder.from_records([{"kind": "mystery"}])


class TestCommMatrix:
    def test_single_message_matrix(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(b"x" * 100, 1, tag=7)
            elif comm.rank == 1:
                comm.recv(0, tag=7)

        res = run_spmd(3, fn, trace=True, timeout=60)
        cm = communication_matrix(res.trace, 3)
        assert cm.counts[0, 1] == 1
        assert cm.total_messages() == 1
        assert cm.counts.sum() == cm.row_messages().sum() == cm.col_messages().sum()
        assert cm.nbytes[0, 1] == res.comms[0].bytes_sent
        assert cm.max_rank_messages() == 1

    def test_matrix_matches_ledger_totals(self):
        res = run_spmd(
            4, lambda comm: comm.alltoall(list(range(comm.size))),
            trace=True, timeout=60,
        )
        cm = communication_matrix(res.trace, 4)
        assert cm.total_messages() == sum(c.messages_sent for c in res.comms)
        assert cm.total_bytes() == sum(c.bytes_sent for c in res.comms)
        np.testing.assert_array_equal(
            cm.row_messages(), [c.messages_sent for c in res.comms]
        )

    def test_phase_matrices_split_traffic(self):
        def fn(comm):
            with comm.profile.phase("a"):
                comm.barrier()
            with comm.profile.phase("b"):
                comm.allreduce(1)

        res = run_spmd(4, fn, trace=True, timeout=60)
        mats = phase_matrices(res.trace, 4)
        assert set(mats) == {"a", "b"}
        total = communication_matrix(res.trace, 4)
        assert (
            mats["a"].total_messages() + mats["b"].total_messages()
            == total.total_messages()
        )

    def test_render_matrix_smoke(self):
        res = run_spmd(2, lambda comm: comm.barrier(), trace=True, timeout=60)
        text = render_matrix(communication_matrix(res.trace, 2))
        assert "src\\dst" in text and "recvd" in text
        with pytest.raises(ValueError):
            render_matrix(communication_matrix(res.trace, 2), what="volume")


class TestCriticalPath:
    def test_chain_exceeds_rank_bound_for_relay(self):
        """A 3-hop relay's critical path is ~3 message times, while each
        rank only pays for ~1-2 endpoints — the chain bound must see it."""

        def fn(comm):
            with comm.profile.phase("relay"):
                payload = np.zeros(1000)
                if comm.rank == 0:
                    comm.send(payload, 1)
                elif comm.rank < comm.size - 1:
                    comm.send(comm.recv(comm.rank - 1), comm.rank + 1)
                else:
                    comm.recv(comm.rank - 1)

        res = run_spmd(4, fn, trace=True, machine=LOCAL, timeout=60)
        cp = critical_path(res.trace, LOCAL, 4, phase="relay")
        assert cp.chain_bound > cp.rank_bound
        assert cp.seconds == cp.chain_bound
        # 3 hops, both endpoints charged: at least 4 message costs deep
        one_msg = res.trace.message_events(kind="send")[0].seconds
        assert cp.chain_bound >= 4 * one_msg

    def test_compute_only_phase(self):
        def fn(comm):
            with comm.profile.phase("crunch"):
                comm.profile.add_flops(3e9)

        res = run_spmd(2, fn, trace=True, machine=LOCAL, timeout=60)
        cp = critical_path(res.trace, LOCAL, 2, phase="crunch")
        assert cp.rank_bound == pytest.approx(3.0)
        assert cp.chain_bound == pytest.approx(3.0)

    def test_render_phase_summary_smoke(self):
        def fn(comm):
            with comm.profile.phase("p1"):
                comm.allreduce(1)

        res = run_spmd(4, fn, trace=True, machine=LOCAL, timeout=60)
        text = render_phase_summary(res.trace, LOCAL, 4)
        assert "p1" in text and "Crit. path" in text


class TestEventTypes:
    def test_message_event_seconds(self):
        ev = MessageEvent("send", 0, 0, 1, 5, 100, "x", 1e-6, 1e-7, 1)
        assert ev.seconds == pytest.approx(1.1e-6)

    def test_span_event_fields(self):
        sp = SpanEvent("span", 2, "tree", 0.5, 10.0, 3, 99.0, 1e-3)
        assert sp.rank == 2 and sp.phase == "tree"
