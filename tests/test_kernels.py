"""Tests for interaction kernels and the direct-summation baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    LaplaceKernel,
    StokesKernel,
    YukawaKernel,
    direct_flops,
    direct_sum,
    get_kernel,
)
from repro.util.timer import PhaseProfile

finite_pts = st.lists(
    st.tuples(*[st.floats(0.01, 0.99) for _ in range(3)]), min_size=2, max_size=6
).map(lambda rows: np.asarray(rows, dtype=float))


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_kernel("laplace"), LaplaceKernel)
        assert isinstance(get_kernel("Stokes"), StokesKernel)
        assert isinstance(get_kernel("yukawa", lam=3.0), YukawaKernel)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("helmholtz")


class TestLaplace:
    def test_pointwise_value(self):
        k = LaplaceKernel()
        t = np.array([[0.0, 0.0, 0.0]])
        s = np.array([[0.0, 0.0, 2.0]])
        np.testing.assert_allclose(k.matrix(t, s), 1.0 / (8.0 * np.pi))

    def test_self_interaction_zero(self, rng):
        pts = rng.random((10, 3))
        m = LaplaceKernel().matrix(pts, pts)
        np.testing.assert_array_equal(np.diag(m), 0.0)
        assert np.all(np.isfinite(m))

    @given(finite_pts)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, pts):
        m = LaplaceKernel().matrix(pts, pts)
        np.testing.assert_allclose(m, m.T)

    def test_homogeneity_declared_correctly(self, rng):
        k = LaplaceKernel()
        t, s = rng.random((4, 3)), rng.random((5, 3))
        lam = 3.7
        np.testing.assert_allclose(
            k.matrix(lam * t, lam * s), lam**k.homogeneity * k.matrix(t, s)
        )


class TestStokes:
    def test_shape_and_interleaving(self, rng):
        k = StokesKernel()
        m = k.matrix(rng.random((4, 3)), rng.random((6, 3)))
        assert m.shape == (12, 18)

    def test_against_formula(self, rng):
        k = StokesKernel(viscosity=2.0)
        t, s = rng.random((3, 3)), rng.random((3, 3))
        m = k.matrix(t, s)
        for i in range(3):
            for j in range(3):
                r = t[i] - s[j]
                rn = np.linalg.norm(r)
                ref = (np.eye(3) / rn + np.outer(r, r) / rn**3) / (16 * np.pi)
                np.testing.assert_allclose(
                    m[3 * i : 3 * i + 3, 3 * j : 3 * j + 3], ref
                )

    def test_block_symmetry(self, rng):
        """G(x, y) = G(y, x)^T for the Stokeslet."""
        k = StokesKernel()
        t, s = rng.random((4, 3)), rng.random((4, 3))
        a = k.matrix(t, s)
        b = k.matrix(s, t)
        for i in range(4):
            for j in range(4):
                np.testing.assert_allclose(
                    a[3 * i : 3 * i + 3, 3 * j : 3 * j + 3],
                    b[3 * j : 3 * j + 3, 3 * i : 3 * i + 3].T,
                )

    def test_self_interaction_zero(self, rng):
        pts = rng.random((5, 3))
        m = StokesKernel().matrix(pts, pts)
        for i in range(5):
            np.testing.assert_array_equal(m[3 * i : 3 * i + 3, 3 * i : 3 * i + 3], 0)

    def test_homogeneity(self, rng):
        k = StokesKernel()
        t, s = rng.random((4, 3)), rng.random((5, 3))
        np.testing.assert_allclose(k.matrix(2 * t, 2 * s), 0.5 * k.matrix(t, s))

    def test_invalid_viscosity(self):
        with pytest.raises(ValueError):
            StokesKernel(viscosity=0.0)


class TestYukawa:
    def test_reduces_to_laplace_at_zero_screening(self, rng):
        t, s = rng.random((5, 3)), rng.random((5, 3))
        np.testing.assert_allclose(
            YukawaKernel(lam=0.0).matrix(t, s), LaplaceKernel().matrix(t, s)
        )

    def test_screening_decays(self):
        t = np.array([[0.0, 0.0, 0.0]])
        s = np.array([[0.0, 0.0, 0.5]])
        v1 = YukawaKernel(lam=1.0).matrix(t, s)[0, 0]
        v5 = YukawaKernel(lam=5.0).matrix(t, s)[0, 0]
        assert v5 < v1

    def test_not_homogeneous(self):
        assert YukawaKernel().homogeneity is None

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            YukawaKernel(lam=-1.0)


class TestApplyAndDirect:
    @pytest.mark.parametrize("name", ["laplace", "stokes", "yukawa"])
    def test_apply_matches_matrix(self, name, rng):
        k = get_kernel(name)
        t, s = rng.random((40, 3)), rng.random((30, 3))
        dens = rng.standard_normal(30 * k.source_dim)
        np.testing.assert_allclose(
            k.apply(t, s, dens, block=7), k.matrix(t, s) @ dens
        )

    def test_apply_rejects_bad_density(self, rng):
        k = get_kernel("stokes")
        with pytest.raises(ValueError, match="density size"):
            k.apply(rng.random((4, 3)), rng.random((5, 3)), np.zeros(5))

    def test_direct_sum_charges_flops(self, rng):
        k = get_kernel("laplace")
        pts = rng.random((50, 3))
        prof = PhaseProfile()
        with prof.phase("direct"):
            direct_sum(k, pts, pts, rng.standard_normal(50), profile=prof)
        assert prof.events["direct"].flops == direct_flops(k, 50, 50)
        assert direct_flops(k, 50, 50) == 50 * 50 * k.flops_per_pair


class TestMatrixBatch:
    @pytest.mark.parametrize("name", ["laplace", "stokes", "yukawa"])
    def test_batch_matches_loop(self, name, rng):
        k = get_kernel(name)
        t = rng.random((5, 7, 3))
        s = rng.random((5, 4, 3))
        batched = k.matrix_batch(t, s)
        for i in range(5):
            np.testing.assert_allclose(batched[i], k.matrix(t[i], s[i]))

    @pytest.mark.parametrize("name", ["laplace", "stokes", "yukawa"])
    def test_batch_self_interaction_zero(self, name, rng):
        k = get_kernel(name)
        pts = rng.random((3, 6, 3))
        m = k.matrix_batch(pts, pts)
        for i in range(3):
            for j in range(6):
                td, sd = k.target_dim, k.source_dim
                block = m[i, j * td : (j + 1) * td, j * sd : (j + 1) * sd]
                np.testing.assert_array_equal(block, 0.0)

    def test_generic_fallback_used_by_base(self, rng):
        """The ABC fallback loops over matrix(); check via a subclass."""
        from repro.kernels.base import Kernel

        class Weird(Kernel):
            name = "weird"

            def matrix(self, targets, sources):
                d = targets[:, None, :] - sources[None, :, :]
                return np.abs(d).sum(axis=-1)

        k = Weird()
        t = rng.random((2, 3, 3))
        s = rng.random((2, 5, 3))
        out = k.matrix_batch(t, s)
        np.testing.assert_allclose(out[1], k.matrix(t[1], s[1]))


class TestNavier:
    def test_against_formula(self, rng):
        from repro.kernels import NavierKernel

        mu, nu = 2.0, 0.25
        k = NavierKernel(shear_modulus=mu, poisson=nu)
        t, s = rng.random((3, 3)), rng.random((3, 3))
        m = k.matrix(t, s)
        for i in range(3):
            for j in range(3):
                r = t[i] - s[j]
                rn = np.linalg.norm(r)
                ref = ((3 - 4 * nu) * np.eye(3) / rn + np.outer(r, r) / rn**3) / (
                    16 * np.pi * mu * (1 - nu)
                )
                np.testing.assert_allclose(
                    m[3 * i : 3 * i + 3, 3 * j : 3 * j + 3], ref
                )

    def test_homogeneity(self, rng):
        from repro.kernels import NavierKernel

        k = NavierKernel()
        t, s = rng.random((4, 3)), rng.random((5, 3))
        np.testing.assert_allclose(k.matrix(2 * t, 2 * s), 0.5 * k.matrix(t, s))

    def test_incompressible_limit_matches_stokeslet_structure(self):
        """At nu = 0.5 the Kelvin tensor is proportional to the Stokeslet."""
        from repro.kernels import NavierKernel, StokesKernel

        nu = 0.4999999
        k = NavierKernel(shear_modulus=1.0, poisson=nu)
        s = StokesKernel(viscosity=1.0)
        t = np.array([[0.1, 0.2, 0.3]])
        y = np.array([[0.7, 0.5, 0.9]])
        np.testing.assert_allclose(k.matrix(t, y), s.matrix(t, y), rtol=1e-5)

    def test_parameter_validation(self):
        from repro.kernels import NavierKernel

        with pytest.raises(ValueError):
            NavierKernel(shear_modulus=0.0)
        with pytest.raises(ValueError):
            NavierKernel(poisson=0.5)

    def test_fmm_accuracy(self):
        from repro.core import Fmm
        from repro.datasets import uniform_cube

        k = get_kernel("navier", poisson=0.3)
        pts = uniform_cube(800, seed=9)
        dens = np.random.default_rng(1).standard_normal(2400)
        f = Fmm(k, order=6, max_points_per_box=40).evaluate(pts, dens)
        ref = direct_sum(k, pts, pts, dens)
        assert np.linalg.norm(f - ref) / np.linalg.norm(ref) < 1e-3
