"""Smoke tests: every example script must import cleanly.

``main()`` bodies are exercised manually / in CI-style full runs; here we
guard against import rot (renamed APIs, moved modules) cheaply.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert hasattr(mod, "main"), f"{path.name} must expose main()"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    for required in (
        "quickstart",
        "gravitational_cluster",
        "stokes_sedimentation",
        "distributed_scaling",
        "gpu_acceleration",
        "nbody_dynamics",
        "field_visualization",
    ):
        assert required in names, required
