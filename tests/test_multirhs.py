"""Multi-RHS evaluation: bit-identity, the GEMM contract, concurrency.

The serving engine's micro-batcher stacks densities as columns and runs
them through all eight phases in one apply.  That is only sound because
of the fixed-shape GEMM contract (:mod:`repro.core.contract`): output
column ``c`` of every batched GEMM depends on input column ``c`` alone,
so a batched result must equal the solo result *bitwise*, not just to
rounding.  These tests pin that promise across kernels, both evaluation
paths, and concurrent callers sharing one evaluator.
"""

import threading

import numpy as np
import pytest

from repro.core import Fmm
from repro.core.contract import Q_PAD, gemm_cols
from repro.datasets import uniform_cube
from repro.kernels import get_kernel
from repro.perf.trace import TraceRecorder
from repro.util.timer import PhaseProfile


class TestGemmColsContract:
    """The column-independence contract every batched phase relies on."""

    @pytest.mark.parametrize("q", [1, 3, Q_PAD, Q_PAD + 1, 2 * Q_PAD])
    def test_column_independent_bits(self, rng, q):
        k = rng.standard_normal((4, 9, 13))
        den = rng.standard_normal((4, 13, q))
        out = gemm_cols(k, den)
        for c in range(q):
            solo = gemm_cols(k, den[:, :, c : c + 1])[:, :, 0]
            assert np.array_equal(out[:, :, c], solo), f"column {c}"

    def test_position_and_neighbour_independent(self, rng):
        """A column's bits survive any placement and any neighbours."""
        k = rng.standard_normal((3, 7, 11))
        col = rng.standard_normal((3, 11, 1))
        ref = gemm_cols(k, col)[:, :, 0]
        for q, pos in [(2, 1), (5, 0), (5, 4), (8, 3), (11, 9)]:
            den = rng.standard_normal((3, 11, q))
            den[:, :, pos] = col[:, :, 0]
            out = gemm_cols(k, den)
            assert np.array_equal(out[:, :, pos], ref), f"q={q} pos={pos}"

    def test_matches_matmul_numerically(self, rng):
        k = rng.standard_normal((5, 6, 8))
        den = rng.standard_normal((5, 8, 10))
        np.testing.assert_allclose(
            gemm_cols(k, den), np.matmul(k, den), rtol=1e-13, atol=1e-15
        )


DENS_COLUMNS = 5


def _density_block(kernel_name, n, q, seed):
    ks = get_kernel(kernel_name).source_dim
    return np.random.default_rng(seed).standard_normal((n * ks, q))


class TestMultiRhsBitIdentity:
    """Batched evaluate vs per-column solo evaluate, bit for bit."""

    @pytest.mark.parametrize("kernel", ["laplace", "stokes", "yukawa"])
    def test_plan_path(self, kernel):
        n = 900
        pts = uniform_cube(n, seed=31)
        fmm = Fmm(kernel, order=4, max_points_per_box=40)
        block = _density_block(kernel, n, DENS_COLUMNS, seed=5)
        plan = fmm.plan(pts)
        ep = fmm.compile_eval_plan(plan)
        multi = fmm.evaluate(pts, block, plan=plan, eval_plan=ep)
        assert multi.shape == (n * fmm.kernel.target_dim, DENS_COLUMNS)
        for j in range(DENS_COLUMNS):
            solo = fmm.evaluate(pts, block[:, j], plan=plan, eval_plan=ep)
            assert np.array_equal(multi[:, j], solo), f"{kernel} col {j}"

    @pytest.mark.parametrize("kernel", ["laplace", "stokes", "yukawa"])
    def test_no_plan_path(self, kernel):
        n = 700
        pts = uniform_cube(n, seed=32)
        fmm = Fmm(kernel, order=4, max_points_per_box=40)
        block = _density_block(kernel, n, 3, seed=6)
        plan = fmm.plan(pts)
        multi = fmm.evaluate(pts, block, plan=plan, use_plan=False)
        for j in range(3):
            solo = fmm.evaluate(pts, block[:, j], plan=plan, use_plan=False)
            assert np.array_equal(multi[:, j], solo), f"{kernel} col {j}"

    def test_plan_path_equals_no_plan_path(self):
        """The two paths agree bitwise, so batching never changes answers."""
        n = 800
        pts = uniform_cube(n, seed=33)
        fmm = Fmm("laplace", order=4, max_points_per_box=35)
        block = _density_block("laplace", n, 4, seed=7)
        plan = fmm.plan(pts)
        ep = fmm.compile_eval_plan(plan)
        a = fmm.evaluate(pts, block, plan=plan, eval_plan=ep)
        b = fmm.evaluate(pts, block, plan=plan, use_plan=False)
        assert np.array_equal(a, b)

    def test_single_column_2d_equals_1d(self):
        n = 600
        pts = uniform_cube(n, seed=34)
        fmm = Fmm("laplace", order=4, max_points_per_box=30)
        dens = np.random.default_rng(8).standard_normal(n)
        plan = fmm.plan(pts)
        ep = fmm.compile_eval_plan(plan)
        flat = fmm.evaluate(pts, dens, plan=plan, eval_plan=ep)
        col = fmm.evaluate(pts, dens[:, None], plan=plan, eval_plan=ep)
        assert col.shape == (n, 1)
        assert np.array_equal(col[:, 0], flat)


class TestDensityValidation:
    def test_1d_wrong_size_reports_shape(self):
        pts = uniform_cube(100, seed=1)
        with pytest.raises(ValueError, match=r"densities shape \(100,\)"):
            Fmm("stokes", order=4).evaluate(pts, np.zeros(100))

    def test_2d_wrong_rows_reports_shape(self):
        pts = uniform_cube(100, seed=1)
        with pytest.raises(ValueError, match=r"densities shape \(50, 3\)"):
            Fmm("laplace", order=4).evaluate(pts, np.zeros((50, 3)))

    def test_wrong_size_any_rank_reports_shape(self):
        pts = uniform_cube(100, seed=1)
        with pytest.raises(ValueError, match=r"densities shape \(50, 2, 2\)"):
            Fmm("laplace", order=4).evaluate(pts, np.zeros((50, 2, 2)))


class TestConcurrentEvaluate:
    def test_shared_fmm_bit_identical_one_compile(self):
        """Threads hammering one Fmm/plan agree bitwise with serial runs
        and trigger exactly one lazy plan compile (``setup:plan`` span)."""
        n = 700
        n_threads, calls_each = 4, 3
        pts = uniform_cube(n, seed=41)
        fmm = Fmm("laplace", order=4, max_points_per_box=40)
        plan = fmm.plan(pts)
        blocks = [
            np.random.default_rng(100 + i).standard_normal(n)
            for i in range(n_threads)
        ]

        trace = TraceRecorder()
        profiles = []
        for i in range(n_threads):
            prof = PhaseProfile()
            prof.bind_trace(trace, rank=i)
            profiles.append(prof)

        results = [[None] * calls_each for _ in range(n_threads)]
        errors = []
        start = threading.Barrier(n_threads)

        def run(i):
            try:
                start.wait(timeout=10)
                for c in range(calls_each):
                    results[i][c] = fmm.evaluate(
                        pts, blocks[i], plan=plan, profile=profiles[i]
                    )
            except Exception as err:  # pragma: no cover - failure detail
                errors.append(err)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors, errors

        # serial references on a fresh evaluator (same tree, same numerics)
        fmm2 = Fmm("laplace", order=4, max_points_per_box=40)
        ep = fmm2.compile_eval_plan(plan)
        for i in range(n_threads):
            ref = fmm2.evaluate(pts, blocks[i], plan=plan, eval_plan=ep)
            for c in range(calls_each):
                assert np.array_equal(results[i][c], ref), f"thread {i} call {c}"

        compiles = trace.span_events(phase="setup:plan")
        assert len(compiles) == 1, (
            f"expected exactly one plan compile, saw {len(compiles)}"
        )
