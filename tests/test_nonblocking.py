"""Nonblocking point-to-point: requests, charging semantics, integrity.

The contract under test (see ``repro.mpi.comm``):

* ``isend``/``irecv`` return :class:`Request` handles; ``wait`` / ``test``
  / ``wait_all`` complete them.  The wire is eager (posted sends never
  deadlock) but the **ledger and trace are charged at completion**, in
  whatever phase is open then.
* Integrity frames are verified at ``wait`` — a bit-flip or drop on an
  in-flight message surfaces as a typed :class:`CorruptMessage` when the
  receiver completes the request, with the channel resynchronised so one
  anomaly yields exactly one error (the poisoning regression).
* Round-stamped collective tags keep back-to-back barriers/allgathers
  correct even with unrelated ``irecv`` s outstanding.
"""

import numpy as np
import pytest

from repro.mpi import LOCAL, run_spmd, wait_all
from repro.mpi.comm import CorruptMessage
from repro.mpi.faults import Fault, FaultPlan
from repro.mpi.runtime import SpmdError


class TestRequestBasics:
    def test_isend_irecv_roundtrip(self):
        def fn(comm):
            r, p = comm.rank, comm.size
            sreq = comm.isend(("ping", r), (r + 1) % p, tag=3)
            rreq = comm.irecv((r - 1) % p, tag=3)
            val = rreq.wait()
            sreq.wait()
            assert rreq.wait() == val  # idempotent
            return val

        res = run_spmd(4, fn, timeout=60)
        assert [v[1] for v in res.values] == [3, 0, 1, 2]

    def test_wait_all_and_out_of_order_completion(self):
        def fn(comm):
            if comm.rank == 0:
                reqs = [comm.isend(k, 1, tag=k) for k in range(4)]
                wait_all(reqs)
                return None
            # complete in reverse posting order: tags select the channel
            reqs = [comm.irecv(0, tag=k) for k in range(4)]
            return [r.wait() for r in reversed(reqs)]

        res = run_spmd(2, fn, timeout=60)
        assert res.values[1] == [3, 2, 1, 0]

    def test_test_polls_without_blocking(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.isend("late", 1, tag=7).wait()
                return None
            req = comm.irecv(0, tag=7)
            assert req.test() is False  # nothing posted yet
            comm.barrier()
            while not req.test():
                pass
            assert req.test() is True
            return req.wait()

        res = run_spmd(2, fn, timeout=60)
        assert res.values[1] == "late"

    def test_send_request_test_is_immediately_true(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend("x", 1, tag=1)
                assert req.test() is True
                return None
            return comm.recv(0, tag=1)

        res = run_spmd(2, fn, timeout=60)
        assert res.values[1] == "x"

    def test_internal_tags_rejected(self):
        def fn(comm):
            comm.isend("x", (comm.rank + 1) % 2, tag=1 << 20)

        with pytest.raises(RuntimeError, match="reserved"):
            run_spmd(2, fn, timeout=60)

    def test_blocking_recv_matches_isend(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(5), 1, tag=2)
                req.wait()
                return None
            return comm.recv(0, tag=2)

        res = run_spmd(2, fn, timeout=60)
        np.testing.assert_array_equal(res.values[1], np.arange(5))


class TestChargeAtCompletion:
    def test_ledger_unchanged_until_wait(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(np.zeros(1000), 1, tag=1)
                posted = (comm.messages_sent, comm.bytes_sent)
                req.wait()
                completed = (comm.messages_sent, comm.bytes_sent)
                return posted, completed
            comm.recv(0, tag=1)
            return None

        res = run_spmd(2, fn, machine=LOCAL, timeout=60)
        posted, completed = res.values[0]
        assert posted == (0, 0)
        assert completed[0] == 1 and completed[1] > 8000

    def test_charge_lands_in_completing_phase(self):
        def fn(comm):
            if comm.rank == 0:
                with comm.profile.phase("post"):
                    req = comm.isend(np.zeros(100), 1, tag=1)
                with comm.profile.phase("complete"):
                    req.wait()
            else:
                with comm.profile.phase("complete"):
                    comm.irecv(0, tag=1).wait()
            return None

        res = run_spmd(2, fn, machine=LOCAL, timeout=60)
        post = res.profiles[0].events["post"]
        done = res.profiles[0].events["complete"]
        assert post.comm_messages == 0 and post.comm_seconds == 0.0
        assert done.comm_messages == 1 and done.comm_seconds > 0.0
        assert res.profiles[1].events["complete"].comm_messages == 1

    def test_trace_events_recorded_at_completion(self):
        def fn(comm):
            if comm.rank == 0:
                with comm.profile.phase("late"):
                    comm.isend("x", 1, tag=1).wait()
            else:
                comm.recv(0, tag=1)
            return None

        res = run_spmd(2, fn, machine=LOCAL, timeout=60, trace=True)
        sends = res.trace.message_events(kind="send")
        assert len(sends) == 1 and sends[0].phase == "late"


class TestIalltoall:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_blocking_alltoall(self, p):
        def fn(comm):
            blocks = [(comm.rank, k) for k in range(comm.size)]
            got = comm.ialltoall(blocks).wait()
            ref = comm.alltoall(blocks)
            return got, ref, comm.messages_sent, comm.bytes_sent

        res = run_spmd(p, fn, machine=LOCAL, timeout=120)
        for got, ref, msgs, nbytes in res.values:
            assert got == ref
            # identical schedule: the nonblocking and blocking exchanges
            # charged the same number of messages and bytes each
            assert msgs == 2 * (p - 1)
            if p > 1:
                assert nbytes % 2 == 0


class TestIntegrityAtWait:
    def test_bitflip_detected_at_wait(self):
        plan = FaultPlan([Fault("bitflip", 0, op="send", index=0, bit=11)])

        def fn(comm):
            if comm.rank == 0:
                comm.isend(np.arange(64), 1, tag=1).wait()
                return None
            req = comm.irecv(0, tag=1)
            with pytest.raises(CorruptMessage, match="CRC"):
                req.wait()
            return "detected"

        res = run_spmd(2, fn, timeout=60, faults=plan, integrity=True)
        assert res.values[1] == "detected"

    def test_drop_resync_regression(self):
        """One dropped delivery must poison exactly one receive.

        Regression for the off-by-one where a sequence gap advanced the
        expected rx sequence by one instead of resyncing to the observed
        frame, so every later in-order message also raised.
        """
        plan = FaultPlan([Fault("drop", 0, op="send", index=0)])

        def fn(comm):
            if comm.rank == 0:
                for k in range(4):
                    comm.send(f"msg{k}", 1, tag=5)
                return None
            # delivery of msg0 was dropped: the first recv pops msg1's
            # frame and reports the gap; msg2/msg3 then verify clean.
            with pytest.raises(CorruptMessage, match="sequence"):
                comm.recv(0, tag=5)
            return [comm.recv(0, tag=5) for _ in range(2)]

        res = run_spmd(2, fn, timeout=60, faults=plan, integrity=True)
        assert res.values[1] == ["msg2", "msg3"]

    def test_duplicate_single_error(self):
        plan = FaultPlan([Fault("duplicate", 0, op="send", index=0)])

        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=5)
                comm.send("b", 1, tag=5)
                return None
            first = comm.recv(0, tag=5)  # original delivery of "a"
            with pytest.raises(CorruptMessage, match="sequence"):
                comm.recv(0, tag=5)  # the stale duplicate
            return first, comm.recv(0, tag=5)

        res = run_spmd(2, fn, timeout=60, faults=plan, integrity=True)
        assert res.values[1] == ("a", "b")

    def test_drop_on_inflight_isend_detected_at_wait(self):
        plan = FaultPlan([Fault("drop", 0, op="send", index=0)])

        def fn(comm):
            if comm.rank == 0:
                wait_all([comm.isend(m, 1, tag=5) for m in ("lost", "k1", "k2")])
                return None
            # the drop eats one delivery: the first completion pops "k1"'s
            # frame and reports the gap, the next verifies "k2" clean
            req = comm.irecv(0, tag=5)
            with pytest.raises(CorruptMessage, match="sequence"):
                req.wait()
            return comm.irecv(0, tag=5).wait()

        res = run_spmd(2, fn, timeout=60, faults=plan, integrity=True)
        assert res.values[1] == "k2"


class TestCollectiveTagStress:
    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_collectives_with_outstanding_irecvs(self, p):
        """Back-to-back barriers/allgathers while user irecvs stay posted.

        Round-stamped collective tags keep each round on its own channel,
        so a fast rank's next-round traffic can never be consumed by a
        peer still draining the previous round — even with unrelated
        nonblocking receives outstanding across the whole sequence.
        """

        def fn(comm):
            r, psz = comm.rank, comm.size
            peer = (r + 1) % psz
            pending = comm.irecv((r - 1) % psz, tag=9)
            out = []
            for it in range(6):
                comm.barrier()
                out.append(comm.allgather((r, it)))
                comm.barrier()
            comm.isend(f"from{r}", peer, tag=9).wait()
            tail = pending.wait()
            return out, tail

        res = run_spmd(p, fn, timeout=120)
        for r, (rounds, tail) in enumerate(res.values):
            assert tail == f"from{(r - 1) % p}"
            for it, got in enumerate(rounds):
                assert got == [(k, it) for k in range(p)]

    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_skewed_collective_sequences(self, p):
        """Rank-dependent point-to-point skew around back-to-back collectives.

        Eager user sends land before/after the collectives depending on
        rank parity; the drain at the end must see them all in order, and
        no collective round may have swallowed one.
        """

        def fn(comm):
            r, psz = comm.rank, comm.size
            peer = r ^ 1 if (r ^ 1) < psz else r
            acc = []
            for it in range(4):
                # skew: even ranks post before the collective, odd after
                if r % 2 == 0:
                    comm.send((r, it), peer, tag=11)
                acc.append(comm.allreduce(it + r))
                if r % 2 == 1:
                    comm.send((r, it), peer, tag=11)
                comm.barrier()
            drained = [comm.recv(peer, tag=11) for _ in range(4)]
            return acc, drained

        res = run_spmd(p, fn, timeout=120)
        for r, (acc, drained) in enumerate(res.values):
            peer = r ^ 1 if (r ^ 1) < p else r
            assert drained == [(peer, it) for it in range(4)]
            for it in range(4):
                assert acc[it] == p * it + p * (p - 1) // 2


class TestAbortWakesWait:
    def test_abort_all_wakes_blocked_request_wait(self):
        def fn(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            # blocked forever unless abort_all notifies the condition
            comm.irecv(0, tag=1).wait()

        with pytest.raises(SpmdError, match="boom"):
            run_spmd(3, fn, timeout=60)
