"""The serving layer: engine, plan cache, batching, admission, chaos.

Everything here runs at small N (hundreds of points, order 4) so the
suite stays in tier-1 time; the paper-scale throughput claims live in
``benchmarks/bench_serving.py``.  The invariants under test do not
depend on scale:

* a served result is *bit-identical* to a direct ``Fmm.evaluate`` on
  the same plan (batching is invisible except in latency),
* admission, deadlines and unknown models fail with typed errors,
* the plan cache is LRU under a byte budget and counts hits/misses,
* under an injected fault plan every accepted request still completes
  bit-identically (retried) — no hangs, no silent wrong answers.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import Fmm
from repro.datasets import uniform_cube
from repro.mpi.faults import Fault, FaultPlan, RetryPolicy
from repro.serve import (
    DeadlineExceeded,
    FairQueue,
    Overloaded,
    PlanCache,
    Request,
    ServeEngine,
    UnknownModel,
)

N = 500
ORDER = 4
BOX = 50


def make_model(seed=11):
    pts = uniform_cube(N, seed=seed)
    fmm = Fmm("laplace", order=ORDER, max_points_per_box=BOX)
    return fmm, pts


@pytest.fixture
def engine():
    eng = ServeEngine(n_workers=2, max_batch=8, max_wait_ms=5.0)
    fmm, pts = make_model()
    eng.register("m", fmm, pts)
    with eng:
        yield eng


class TestEngineBasics:
    def test_served_equals_direct_bitwise(self, engine):
        model = engine._model("m")
        rng = np.random.default_rng(0)
        ep = model.fmm.compile_eval_plan(model.plan)
        for _ in range(3):
            dens = rng.standard_normal(N)
            got = engine.evaluate("m", dens, timeout_s=30.0)
            ref = model.fmm.evaluate(
                model.points, dens, plan=model.plan, eval_plan=ep
            )
            assert np.array_equal(got, ref)

    def test_unknown_model(self, engine):
        with pytest.raises(UnknownModel):
            engine.submit("nope", np.zeros(N))

    def test_bad_density_reports_shape(self, engine):
        with pytest.raises(ValueError, match=r"shape \(7,\)"):
            engine.submit("m", np.zeros(7))

    def test_metrics_snapshot_shape(self, engine):
        engine.evaluate("m", np.ones(N), timeout_s=30.0)
        snap = engine.metrics.snapshot(elapsed_s=1.0)
        assert snap["completed"] >= 1
        assert snap["failed"] == 0
        assert "throughput_rps" in snap
        m = snap["models"]["m"]
        for key in ("p50", "p95", "p99", "mean"):
            assert m["latency_s"][key] is not None
        assert m["batch_size"]["mean"] >= 1.0
        pc = snap["plan_cache"]
        assert pc["misses"] >= 1 and pc["hit_rate"] is not None

    def test_stop_drains_with_typed_error(self):
        eng = ServeEngine(n_workers=1)
        fmm, pts = make_model()
        eng.register("m", fmm, pts, warm=False)
        # never started: queued work must still resolve at stop(), typed
        req = eng.submit("m", np.zeros(N))
        eng.stop()
        with pytest.raises(Overloaded):
            req.result(timeout=1.0)


class TestBatching:
    def test_concurrent_requests_coalesce_bit_identically(self):
        eng = ServeEngine(n_workers=1, max_batch=8, max_wait_ms=20.0)
        fmm, pts = make_model()
        model = eng.register("m", fmm, pts)
        ep = fmm.compile_eval_plan(model.plan)
        rng = np.random.default_rng(3)
        blocks = [rng.standard_normal(N) for _ in range(12)]
        refs = [
            fmm.evaluate(model.points, d, plan=model.plan, eval_plan=ep)
            for d in blocks
        ]
        with eng:
            reqs = [eng.submit("m", d, timeout_s=60.0) for d in blocks]
            outs = [r.result(timeout=60.0) for r in reqs]
        for got, ref in zip(outs, refs):
            assert np.array_equal(got, ref)
        # all 12 were queued before the single worker woke: they must
        # have ridden in multi-RHS batches, not 12 solo applies
        sizes = [r.batch_size for r in reqs]
        assert max(sizes) > 1, sizes
        snap = eng.metrics.snapshot()
        assert snap["models"]["m"]["batch_size"]["max"] == max(sizes)

    def test_per_tenant_order_preserved(self):
        eng = ServeEngine(n_workers=1, max_batch=4, max_wait_ms=10.0)
        fmm, pts = make_model()
        eng.register("m", fmm, pts)
        with eng:
            reqs = [
                eng.submit("m", np.full(N, float(i)), tenant="t0",
                           timeout_s=60.0)
                for i in range(6)
            ]
            outs = [r.result(timeout=60.0) for r in reqs]
        # request i carried density i*ones: results must scale linearly,
        # proving no cross-request mixup inside the batches
        base = outs[1]
        for i, out in enumerate(outs):
            np.testing.assert_allclose(out, i * base, rtol=1e-12, atol=1e-9)


class TestAdmission:
    def test_overloaded_at_max_queue(self):
        q = FairQueue(max_depth=2)
        q.push(Request("m", np.zeros(1)))
        q.push(Request("m", np.zeros(1)))
        with pytest.raises(Overloaded):
            q.push(Request("m", np.zeros(1)))

    def test_engine_rejects_and_counts(self):
        eng = ServeEngine(n_workers=1, max_queue=2)
        fmm, pts = make_model()
        eng.register("m", fmm, pts, warm=False)
        # not started: the queue can only fill
        eng.submit("m", np.zeros(N))
        eng.submit("m", np.zeros(N))
        with pytest.raises(Overloaded):
            eng.submit("m", np.zeros(N))
        assert eng.metrics.snapshot()["rejected"] == 1
        eng.stop()

    def test_deadline_exceeded_typed(self):
        eng = ServeEngine(n_workers=1, max_wait_ms=1.0)
        fmm, pts = make_model()
        eng.register("m", fmm, pts)
        req = eng.submit("m", np.zeros(N), timeout_s=0.001)
        time.sleep(0.05)  # let the deadline lapse before any worker runs
        with eng:
            with pytest.raises(DeadlineExceeded):
                req.result(timeout=30.0)
        assert eng.metrics.snapshot()["expired"] == 1

    def test_already_expired_deadline_typed(self, engine):
        """A deadline in the past at submit time must fail typed, fast.

        Regression for the dequeue wait: ``deadline - now`` is negative
        for such a request, and the queue's timed wait must clamp it to
        zero (never hand ``Condition.wait`` a negative timeout) and give
        up immediately.
        """
        req = engine.submit("m", np.zeros(N), timeout_s=-1.0)
        with pytest.raises(DeadlineExceeded):
            req.result(timeout=30.0)

    @pytest.mark.parametrize("timeout", [0.0, -5.0])
    def test_pop_clamps_nonpositive_timeout(self, timeout):
        q = FairQueue(max_depth=4)
        t0 = time.monotonic()
        assert q.pop(timeout=timeout) is None  # empty: no wait at all
        assert time.monotonic() - t0 < 1.0
        q.push(Request("m", np.zeros(1)))
        got = q.pop(timeout=timeout)  # queued work is still served
        assert got is not None and got.model == "m"

    def test_weighted_fair_dequeue(self):
        q = FairQueue(max_depth=64, weights={"heavy": 2.0, "light": 1.0})
        for i in range(6):
            q.push(Request("m", i, tenant="heavy"))
            q.push(Request("m", i, tenant="light"))
        order = [q.pop(timeout=0.0).tenant for _ in range(9)]
        # weight 2 drains twice as fast: among the first 9 pops, heavy
        # gets ~2/3 of the service
        assert order.count("heavy") == 6
        assert order.count("light") == 3


class TestPlanCache:
    class _FakePlan:
        def __init__(self, nbytes):
            self.nbytes = nbytes

    def test_lru_eviction_under_budget(self):
        cache = PlanCache(budget_bytes=100)
        compiles = []

        def make(name, nb):
            def fn():
                compiles.append(name)
                return self._FakePlan(nb)
            return fn

        a = cache.get("a", make("a", 60))
        cache.get("b", make("b", 60))  # evicts a (LRU)
        assert "b" in cache and "a" not in cache
        a2 = cache.get("a", make("a", 60))  # recompile, evicts b
        assert a2 is not a
        assert compiles == ["a", "b", "a"]

    def test_hit_moves_to_front(self):
        cache = PlanCache(budget_bytes=100)
        cache.get("a", lambda: self._FakePlan(40))
        cache.get("b", lambda: self._FakePlan(40))
        cache.get("a", lambda: self._FakePlan(40))  # hit: a becomes MRU
        cache.get("c", lambda: self._FakePlan(40))  # evicts b, not a
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_single_overbudget_plan_still_serves(self):
        cache = PlanCache(budget_bytes=10)
        p = cache.get("big", lambda: self._FakePlan(1000))
        assert cache.get("big", lambda: self._FakePlan(1000)) is p
        assert len(cache) == 1

    def test_engine_counts_hits_and_misses(self):
        eng = ServeEngine(n_workers=1)
        fmm, pts = make_model()
        eng.register("m", fmm, pts, warm=True)  # warm: one miss+compile
        with eng:
            eng.evaluate("m", np.ones(N), timeout_s=30.0)  # hit
        snap = eng.metrics.snapshot()
        assert snap["plan_cache"]["misses"] == 1
        assert snap["plan_cache"]["hits"] >= 1


class TestChaos:
    def test_injected_faults_retry_bit_identically(self):
        faults = FaultPlan(
            [
                Fault("crash", rank=0, op="phase", phase="S2U", attempts=1),
                Fault("straggle", rank=0, op="phase", phase="ULI",
                      seconds=0.01, attempts=1),
            ],
            seed=0,
        )
        eng = ServeEngine(
            n_workers=1,
            max_batch=4,
            max_wait_ms=10.0,
            faults=faults,
            retry=RetryPolicy(max_attempts=3),
        )
        fmm, pts = make_model()
        model = eng.register("m", fmm, pts)
        ep = fmm.compile_eval_plan(model.plan)
        rng = np.random.default_rng(9)
        blocks = [rng.standard_normal(N) for _ in range(6)]
        refs = [
            fmm.evaluate(model.points, d, plan=model.plan, eval_plan=ep)
            for d in blocks
        ]
        with eng:
            reqs = [eng.submit("m", d, timeout_s=60.0) for d in blocks]
            outs = [r.result(timeout=60.0) for r in reqs]
        for got, ref in zip(outs, refs):
            assert np.array_equal(got, ref)
        assert len(eng.fault_events) >= 1
        snap = eng.metrics.snapshot()
        assert snap["failed"] == 0
        assert snap["retried"] >= 1

    def test_exhausted_retries_fail_typed(self):
        # crash S2U on every attempt (phase faults fire on the index-th
        # entry of the phase, and the counter advances across retries, so
        # a permanent fault is one Fault per index): the batch must fail
        # with the typed injected error, never hang or return garbage
        faults = FaultPlan(
            [Fault("crash", rank=0, op="phase", phase="S2U", index=i,
                   attempts=99) for i in range(5)],
            seed=0,
        )
        eng = ServeEngine(
            n_workers=1, faults=faults, retry=RetryPolicy(max_attempts=2)
        )
        fmm, pts = make_model()
        eng.register("m", fmm, pts)
        from repro.mpi.faults import TRANSIENT_ERRORS

        with eng:
            req = eng.submit("m", np.ones(N), timeout_s=30.0)
            with pytest.raises(TRANSIENT_ERRORS):
                req.result(timeout=30.0)
        assert eng.metrics.snapshot()["failed"] == 1


class TestConcurrentClients:
    def test_many_tenants_all_complete(self):
        eng = ServeEngine(n_workers=2, max_batch=8, max_wait_ms=2.0,
                          max_queue=128)
        fmm, pts = make_model()
        model = eng.register("m", fmm, pts)
        ep = fmm.compile_eval_plan(model.plan)
        rng = np.random.default_rng(4)
        per_client = 4
        blocks = {
            f"t{i}": [rng.standard_normal(N) for _ in range(per_client)]
            for i in range(4)
        }
        refs = {
            t: [
                fmm.evaluate(model.points, d, plan=model.plan, eval_plan=ep)
                for d in ds
            ]
            for t, ds in blocks.items()
        }
        failures = []

        def client(tenant):
            for k, dens in enumerate(blocks[tenant]):
                try:
                    out = eng.evaluate("m", dens, tenant=tenant,
                                       timeout_s=60.0)
                    if not np.array_equal(out, refs[tenant][k]):
                        failures.append(f"{tenant}[{k}]: mismatch")
                except Exception as err:
                    failures.append(f"{tenant}[{k}]: {err!r}")

        with eng:
            threads = [
                threading.Thread(target=client, args=(t,)) for t in blocks
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
        assert not failures, failures
        snap = eng.metrics.snapshot()
        assert snap["completed"] == 4 * per_client
        assert snap["failed"] == 0
