"""Tests for the FMM tree structure."""

import numpy as np

from repro.core.tree import build_tree
from repro.util import morton


class TestTreeStructure:
    def test_validate_passes(self, any_points):
        tree = build_tree(any_points, 25)
        tree.validate()

    def test_point_partition_by_leaves(self, uniform_points):
        tree = build_tree(uniform_points, 30)
        leaves = tree.leaf_indices
        counts = tree.point_counts()
        assert counts[leaves].sum() == tree.n_points
        assert counts[0] == tree.n_points  # root covers everything

    def test_points_sorted_by_key(self, uniform_points):
        tree = build_tree(uniform_points, 30)
        keys = morton.encode_points(tree.points)
        assert np.all(keys[1:] >= keys[:-1])
        np.testing.assert_allclose(tree.points, uniform_points[tree.order])

    def test_find(self, uniform_points):
        tree = build_tree(uniform_points, 30)
        idx = tree.find(tree.keys[::3])
        np.testing.assert_array_equal(idx, np.arange(tree.n_nodes)[::3])
        ghost = morton.make_oct(0, 0, 0, morton.MAX_DEPTH)
        if ghost not in tree.keys:
            assert tree.find(np.array([ghost]))[0] == -1

    def test_nodes_at_level(self, uniform_points):
        tree = build_tree(uniform_points, 30)
        total = sum(
            tree.nodes_at_level(l).size for l in range(tree.max_level + 1)
        )
        assert total == tree.n_nodes
        assert tree.nodes_at_level(0).size == 1

    def test_levels_consistent_with_parents(self, ellipsoid_points):
        tree = build_tree(ellipsoid_points, 20)
        nz = np.arange(1, tree.n_nodes)
        np.testing.assert_array_equal(
            tree.levels[tree.parent[nz]], tree.levels[nz] - 1
        )

    def test_geometry_matches_keys(self, uniform_points):
        tree = build_tree(uniform_points, 50)
        np.testing.assert_allclose(
            tree.half_widths, 0.5 * 2.0 ** -tree.levels.astype(float)
        )
        # each leaf's points lie inside its box
        for i in tree.leaf_indices[:40]:
            pts = tree.leaf_points(i)
            if len(pts) == 0:
                continue
            c, r = tree.centers[i], tree.half_widths[i]
            assert np.all(np.abs(pts - c) <= r + 1e-12)

    def test_leaf_points_view(self, uniform_points):
        tree = build_tree(uniform_points, 30)
        i = tree.leaf_indices[np.argmax(tree.point_counts()[tree.leaf_indices])]
        pts = tree.leaf_points(i)
        assert pts.base is tree.points  # a view, not a copy
