"""Tests for U/V/W/X interaction-list construction.

The key guarantees: exact agreement with the brute-force definitions of
paper Table I, and the symmetry properties the LET correctness proof
relies on (U and V symmetric; X is the transpose of W).
"""

import numpy as np
import pytest

from repro.core.lists import CsrList, build_lists
from repro.core.tree import build_tree
from repro.datasets import ellipsoid_surface, plummer_cluster, uniform_cube
from repro.util import morton


def brute_force_lists(tree):
    """Literal implementation of the Table I definitions."""
    n = tree.n_nodes
    keys, lev, par, isleaf = tree.keys, tree.levels, tree.parent, tree.is_leaf
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n):
        adj[i] = morton.adjacent(np.full(n, keys[i], dtype=np.uint64), keys)
    U = {i: set() for i in range(n)}
    V = {i: set() for i in range(n)}
    W = {i: set() for i in range(n)}
    for i in range(n):
        if isleaf[i]:
            U[i] = {j for j in range(n) if isleaf[j] and (adj[i, j] or j == i)}
        if par[i] >= 0:
            p = par[i]
            for c in range(n):
                if lev[c] == lev[p] and adj[p, c]:
                    for k in tree.children[c]:
                        if k >= 0 and not adj[i, k]:
                            V[i].add(k)
        if isleaf[i]:
            colleagues = [j for j in range(n) if lev[j] == lev[i] and adj[i, j]]
            stack = [k for c in colleagues for k in tree.children[c] if k >= 0]
            while stack:
                a = stack.pop()
                if not adj[i, a] and adj[i, par[a]]:
                    W[i].add(a)
                stack.extend(k for k in tree.children[a] if k >= 0)
    X = {i: set() for i in range(n)}
    for a, ws in W.items():
        for b in ws:
            X[b].add(a)
    return U, V, W, X


@pytest.fixture(
    params=[
        ("uniform", 250, 15),
        ("ellipsoid", 300, 12),
        ("plummer", 300, 12),
    ],
    ids=lambda p: p[0],
)
def small_tree(request):
    name, n, q = request.param
    maker = {
        "uniform": uniform_cube,
        "ellipsoid": ellipsoid_surface,
        "plummer": plummer_cluster,
    }[name]
    return build_tree(maker(n, seed=17), q)


class TestAgainstBruteForce:
    def test_all_lists_match(self, small_tree):
        lists = build_lists(small_tree)
        U, V, W, X = brute_force_lists(small_tree)
        for i in range(small_tree.n_nodes):
            assert set(lists.u.of(i).tolist()) == U[i], f"U mismatch at {i}"
            assert set(lists.v.of(i).tolist()) == V[i], f"V mismatch at {i}"
            assert set(lists.w.of(i).tolist()) == W[i], f"W mismatch at {i}"
            assert set(lists.x.of(i).tolist()) == X[i], f"X mismatch at {i}"


class TestSymmetries:
    """The symmetry facts the paper's LET proof uses (its footnote 2)."""

    @pytest.fixture(scope="class")
    def built(self):
        tree = build_tree(ellipsoid_surface(1200, seed=5), 20)
        return tree, build_lists(tree)

    def test_u_symmetric(self, built):
        tree, lists = built
        inv = lists.u.invert()
        np.testing.assert_array_equal(inv.offsets, lists.u.offsets)
        np.testing.assert_array_equal(inv.indices, lists.u.indices)

    def test_v_symmetric(self, built):
        tree, lists = built
        inv = lists.v.invert()
        np.testing.assert_array_equal(inv.offsets, lists.v.offsets)
        np.testing.assert_array_equal(inv.indices, lists.v.indices)

    def test_x_is_transpose_of_w(self, built):
        tree, lists = built
        inv = lists.w.invert()
        np.testing.assert_array_equal(inv.offsets, lists.x.offsets)
        np.testing.assert_array_equal(inv.indices, lists.x.indices)

    def test_self_in_own_u_list(self, built):
        tree, lists = built
        for i in tree.leaf_indices:
            assert i in lists.u.of(i)

    def test_u_w_only_for_leaves(self, built):
        tree, lists = built
        internal = ~tree.is_leaf
        assert lists.u.counts[internal].sum() == 0
        assert lists.w.counts[internal].sum() == 0

    def test_v_same_level(self, built):
        tree, lists = built
        rows = np.repeat(np.arange(tree.n_nodes), lists.v.counts)
        np.testing.assert_array_equal(
            tree.levels[rows], tree.levels[lists.v.indices]
        )

    def test_x_members_are_coarser_leaves(self, built):
        tree, lists = built
        rows = np.repeat(np.arange(tree.n_nodes), lists.x.counts)
        assert np.all(tree.is_leaf[lists.x.indices])
        assert np.all(tree.levels[lists.x.indices] < tree.levels[rows])

    def test_interaction_decomposition_covers_all_pairs(self, built):
        """Every distinct leaf pair is connected through exactly one of:
        U directly, V/W/X at some ancestor level, or well-separated
        ancestors handled by M2L higher up.  We check the near-field split:
        adjacent leaves appear in U and nowhere in V/W/X."""
        tree, lists = built
        for i in tree.leaf_indices[:100]:
            u_set = set(lists.u.of(i).tolist()) - {i}
            for j in u_set:
                assert j not in set(lists.v.of(i).tolist())
                assert j not in set(lists.w.of(i).tolist())
                assert j not in set(lists.x.of(i).tolist())


class TestCsrList:
    def test_from_pairs_dedupes(self):
        csr = CsrList.from_pairs(
            np.array([1, 1, 0, 1]), np.array([2, 2, 1, 0]), 3
        )
        np.testing.assert_array_equal(csr.of(1), [0, 2])
        np.testing.assert_array_equal(csr.of(0), [1])
        assert csr.of(2).size == 0
        assert csr.total() == 3

    def test_empty(self):
        csr = CsrList.from_pairs(np.array([]), np.array([]), 4)
        assert csr.total() == 0
        assert all(csr.of(i).size == 0 for i in range(4))

    def test_invert_roundtrip(self, rng):
        rows = rng.integers(0, 20, 100)
        cols = rng.integers(0, 20, 100)
        csr = CsrList.from_pairs(rows, cols, 20)
        back = csr.invert().invert()
        np.testing.assert_array_equal(back.offsets, csr.offsets)
        np.testing.assert_array_equal(back.indices, csr.indices)
