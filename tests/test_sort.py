"""Tests for the distributed sample sort and bitonic sort."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.sort import bitonic_sort, parallel_sample_sort


def _global_sorted(values_per_rank):
    return np.sort(np.concatenate(values_per_rank))


class TestBitonic:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_sorts_equal_blocks(self, p):
        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            return bitonic_sort(comm, rng.integers(0, 10_000, 32))

        res = run_spmd(p, fn, timeout=120)
        merged = np.concatenate(res.values)
        np.testing.assert_array_equal(merged, np.sort(merged))
        for block in res.values:
            np.testing.assert_array_equal(block, np.sort(block))

    def test_rejects_non_power_of_two(self):
        def fn(comm):
            return bitonic_sort(comm, np.arange(4))

        with pytest.raises(RuntimeError, match="power-of-two"):
            run_spmd(3, fn, timeout=60)

    def test_unequal_blocks_keep_sizes(self):
        def fn(comm):
            rng = np.random.default_rng(comm.rank + 5)
            local = rng.integers(0, 100, 8 + 4 * comm.rank)
            out = bitonic_sort(comm, local)
            return len(out), out

        res = run_spmd(4, fn, timeout=120)
        sizes = [v[0] for v in res.values]
        assert sizes == [8, 12, 16, 20]


class TestSampleSort:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 6])
    def test_global_order_and_conservation(self, p):
        def fn(comm):
            rng = np.random.default_rng(100 + comm.rank)
            keys = rng.integers(0, 1 << 50, int(rng.integers(40, 200))).astype(
                np.uint64
            )
            payload = keys.astype(np.float64) * 3.0
            sk, sp = parallel_sample_sort(comm, keys, payload)
            assert np.all(np.diff(sk.astype(np.int64)) >= 0)
            np.testing.assert_allclose(sp, sk.astype(np.float64) * 3.0)
            return keys, sk

        res = run_spmd(p, fn, timeout=240)
        inputs = np.concatenate([v[0] for v in res.values])
        outputs = [v[1] for v in res.values]
        merged = np.concatenate(outputs)
        np.testing.assert_array_equal(np.sort(inputs), np.sort(merged))
        # chunks are globally ordered
        for a, b in zip(outputs, outputs[1:]):
            if a.size and b.size:
                assert a[-1] <= b[0]

    def test_multiple_payloads(self):
        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            keys = rng.integers(0, 1000, 50).astype(np.uint64)
            p1 = keys.astype(np.float64)
            p2 = np.stack([keys, keys * 2], axis=1).astype(np.float64)
            sk, s1, s2 = parallel_sample_sort(comm, keys, p1, p2)
            assert np.allclose(s1, sk)
            assert np.allclose(s2[:, 1], 2.0 * sk.astype(np.float64))
            return True

        assert all(run_spmd(4, fn, timeout=120).values)

    def test_skewed_input_stays_balanced_enough(self):
        """All data on one rank must still spread across ranks."""

        def fn(comm):
            if comm.rank == 0:
                keys = np.arange(1000, dtype=np.uint64)
            else:
                keys = np.empty(0, dtype=np.uint64)
            (sk,) = parallel_sample_sort(comm, keys)
            return sk.size

        res = run_spmd(4, fn, timeout=120)
        assert sum(res.values) == 1000
        # splitters come from rank 0's regular sample, so every rank
        # gets a nontrivial share
        assert min(res.values) > 0

    def test_payload_length_mismatch(self):
        def fn(comm):
            parallel_sample_sort(
                comm, np.arange(4, dtype=np.uint64), np.zeros(3)
            )

        with pytest.raises(RuntimeError, match="payload length"):
            run_spmd(2, fn, timeout=60)
