"""Property-based tests of the simulated MPI collectives.

Collectives implemented over point-to-point must agree with their serial
definitions for arbitrary payloads and communicator sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_spmd

sizes = st.integers(min_value=1, max_value=9)
values = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=9
)


class TestCollectiveProperties:
    @given(sizes, st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_equals_serial_sum(self, p, base):
        def fn(comm):
            return comm.allreduce(base + comm.rank * 3)

        res = run_spmd(p, fn, timeout=120)
        expect = sum(base + r * 3 for r in range(p))
        assert all(v == expect for v in res.values)

    @given(sizes)
    @settings(max_examples=15, deadline=None)
    def test_allgather_orders_by_rank(self, p):
        def fn(comm):
            return comm.allgather((comm.rank, comm.rank**2))

        res = run_spmd(p, fn, timeout=120)
        expect = [(r, r**2) for r in range(p)]
        assert all(v == expect for v in res.values)

    @given(sizes)
    @settings(max_examples=15, deadline=None)
    def test_exscan_matches_cumsum(self, p):
        def fn(comm):
            return comm.exscan(float(2 * comm.rank + 1))

        res = run_spmd(p, fn, timeout=120)
        prefix = np.concatenate([[0.0], np.cumsum([2 * r + 1 for r in range(p)])])
        assert res.values[0] is None
        for r in range(1, p):
            assert res.values[r] == prefix[r]

    @given(sizes, st.integers(0, 8))
    @settings(max_examples=15, deadline=None)
    def test_bcast_any_root(self, p, root_seed):
        root = root_seed % p

        def fn(comm):
            payload = {"data": [1, 2, 3]} if comm.rank == root else None
            return comm.bcast(payload, root=root)

        res = run_spmd(p, fn, timeout=120)
        assert all(v == {"data": [1, 2, 3]} for v in res.values)

    @given(sizes)
    @settings(max_examples=10, deadline=None)
    def test_alltoall_is_transpose(self, p):
        def fn(comm):
            blocks = [(comm.rank, k) for k in range(comm.size)]
            return comm.alltoall(blocks)

        res = run_spmd(p, fn, timeout=120)
        for r, got in enumerate(res.values):
            assert got == [(k, r) for k in range(p)]

    @given(sizes, st.integers(0, 8))
    @settings(max_examples=10, deadline=None)
    def test_reduce_numpy_arrays(self, p, root_seed):
        root = root_seed % p

        def fn(comm):
            return comm.reduce(np.full(3, comm.rank + 1.0), root=root)

        res = run_spmd(p, fn, timeout=120)
        expect = np.full(3, p * (p + 1) / 2)
        np.testing.assert_allclose(res.values[root], expect)
        for r in range(p):
            if r != root:
                assert res.values[r] is None
