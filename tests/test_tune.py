"""Tests for the online autotuner: cost model, search, store, monitor,
serving integration and the distributed collective config vote."""

import numpy as np
import pytest

from repro import Fmm
from repro.core.autotune import SubsampleProbe
from repro.core.evaluator import FmmEvaluator
from repro.core.lists import build_lists
from repro.core.tree import build_tree
from repro.kernels import get_kernel
from repro.serve import ServeEngine
from repro.serve.metrics import ServeMetrics
from repro.tune.cost import CostModel, phase_flops, plan_bytes_estimate
from repro.tune.monitor import SloMonitor
from repro.tune.search import (
    SLO,
    TuneConfig,
    default_grid,
    measure_grid,
    propose_config,
    tune,
)
from repro.tune.store import TuneStore, geometry_fingerprint

SEED = 0


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(SEED).random((900, 3))


#: A grid whose winner dominates by construction (order 4 strictly beats
#: order 6 on cost at equal accuracy-feasibility), so selection does not
#: hinge on sub-noise measured differences.
def tiny_grid():
    return default_grid(
        900, orders=(4, 6), leaf_sizes=(64,), precisions=("fp64",),
        batch_shapes=((4, 1.0),),
    )


class TestCostModel:
    def test_phase_flops_positive(self, points):
        ev = FmmEvaluator(get_kernel("laplace"), 4)
        tree = build_tree(points, 64)
        lists = build_lists(tree)
        flops = phase_flops(ev, tree, lists)
        assert set(flops) == {"S2U", "U2U", "VLI", "XLI", "D2D", "WLI",
                              "D2T", "ULI"}
        assert flops["ULI"] > 0 and flops["S2U"] > 0 and flops["VLI"] > 0

    def test_plan_bytes_scale_with_precision(self, points):
        ev = FmmEvaluator(get_kernel("laplace"), 4)
        tree = build_tree(points, 64)
        lists = build_lists(tree)
        b64 = plan_bytes_estimate(ev, tree, lists, "fp64", 2**30)
        b32 = plan_bytes_estimate(ev, tree, lists, "fp32", 2**30)
        assert 0 < b32 < b64

    def test_calibrated_predictions_positive(self, points):
        probe = SubsampleProbe(points, sample=500, seed=SEED)
        model = CostModel()
        model.calibrate(
            probe, lambda p: FmmEvaluator(probe.kernel, 4, precision=p),
            precisions=("fp64",), max_points=64, order=4,
        )
        ev = FmmEvaluator(probe.kernel, 4)
        tree = build_tree(points, 64)
        lists = build_lists(tree)
        t1 = model.predict_apply(ev, tree, lists, "fp64", batch=1)
        t8 = model.predict_apply(ev, tree, lists, "fp64", batch=8)
        assert 0 < t1 <= t8

    def test_roundtrip_and_observe_bounds(self):
        model = CostModel()
        model.coeffs[("ULI", "fp64")] = 1e-9
        model.overhead["fp64"] = 1e-3
        back = CostModel.from_dict(model.to_dict())
        assert back.coeffs[("ULI", "fp64")] == pytest.approx(1e-9)
        for _ in range(50):
            model.observe(observed_s=100.0, predicted_s=1.0)
        assert model.correction <= 10.0
        for _ in range(50):
            model.observe(observed_s=1.0, predicted_s=100.0)
        assert model.correction >= 0.1


class TestSearch:
    def test_propose_deterministic_under_fixed_seed(self, points):
        slo = SLO(latency_s=30.0, precision_rtol=1e-2)
        a = propose_config(points, slo=slo, grid=tiny_grid(),
                           seed=SEED, sample=500)
        b = propose_config(points, slo=slo, grid=tiny_grid(),
                           seed=SEED, sample=500)
        assert a == b
        assert a.order == 4  # dominated order never wins

    def test_measured_search_deterministic_and_within_budget(self, points):
        slo = SLO(latency_s=30.0, precision_rtol=1e-2)
        r1 = tune(points, slo=slo, grid=tiny_grid(), seed=SEED, sample=500)
        r2 = tune(points, slo=slo, grid=tiny_grid(), seed=SEED, sample=500)
        assert r1.config == r2.config
        assert r1.n_probed <= max(1, int(np.ceil(0.25 * r1.grid_size)))
        assert r1.met_slo

    def test_accuracy_floor_never_violated(self, points):
        slo = SLO(latency_s=30.0, precision_rtol=1e-3)
        grid = default_grid(900, orders=(4, 6), leaf_sizes=(64,),
                            precisions=("fp64", "fp32"),
                            batch_shapes=((4, 1.0),))
        rep = tune(points, slo=slo, grid=grid, seed=SEED, sample=500)
        cfg = rep.config
        cell = rep.accuracy[f"o{cfg.order}/{cfg.precision}"]
        safety = 2.0 if cfg.precision == "fp32" else 1.0
        assert cell * safety <= slo.precision_rtol

    def test_impossible_floor_reported_not_silently_met(self, points):
        slo = SLO(latency_s=30.0, precision_rtol=1e-15)
        rep = tune(points, slo=slo, grid=tiny_grid(), seed=SEED, sample=500)
        assert not rep.met_slo  # nothing clears a 1e-15 floor

    def test_measure_grid_covers_every_config(self, points):
        grid = tiny_grid()
        out = measure_grid(points, grid=grid, seed=SEED, reps=1)
        assert set(out) == set(grid)
        assert all(t > 0 for t in out.values())

    def test_config_key_roundtrip(self):
        cfg = TuneConfig(order=6, max_points=144, precision="fp32",
                         max_batch=16, max_wait_ms=4.0)
        assert TuneConfig.from_dict(cfg.to_dict()) == cfg
        assert "o6q144fp32" in cfg.key()


class TestStore:
    def test_roundtrip(self, tmp_path, points):
        store = TuneStore(tmp_path / "t.json")
        slo = SLO()
        fp = geometry_fingerprint(points)
        cfg = TuneConfig(order=4, max_points=64)
        store.put(fp, "laplace", slo, cfg)
        assert store.get(fp, "laplace", slo) == cfg

    def test_invalidation_on_fingerprint_change(self, tmp_path, points):
        store = TuneStore(tmp_path / "t.json")
        slo = SLO()
        fp = geometry_fingerprint(points)
        store.put(fp, "laplace", slo, TuneConfig())
        moved = points + np.array([0.21, 0.0, 0.0])  # geometry changed
        fp2 = geometry_fingerprint(np.clip(moved, 0, 1.2))
        assert fp2 != fp
        assert store.get(fp2, "laplace", slo) is None  # never looked up
        assert store.invalidate(fp) == 1
        assert store.get(fp, "laplace", slo) is None

    def test_key_axes_are_independent(self, tmp_path, points):
        store = TuneStore(tmp_path / "t.json")
        fp = geometry_fingerprint(points)
        store.put(fp, "laplace", SLO(), TuneConfig(order=4))
        assert store.get(fp, "stokes", SLO()) is None
        assert store.get(fp, "laplace", SLO(latency_s=9.0)) is None
        assert store.get(fp, "laplace", SLO(), backend="dist4") is None

    def test_corrupt_and_versioned_files_treated_empty(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{not json")
        store = TuneStore(path)
        assert store.entries() == []
        path.write_text('{"version": 999, "entries": {"k": {}}}')
        assert store.entries() == []


class _FakeMetrics:
    """Minimal window surface the monitor polls."""

    def __init__(self):
        self.p95 = 0.0
        self.count = 100
        self.resets = 0

    def window_count(self, model):
        return self.count

    def window_quantile(self, model, pct, kind="latencies"):
        return self.p95

    def reset_window(self, model):
        self.resets += 1


class TestMonitor:
    def make(self, retunes, **kw):
        metrics = _FakeMetrics()
        slo = SLO(latency_s=0.1, drift_band=1.25, min_window=16)
        mon = SloMonitor(metrics, "m", slo,
                         retune=lambda m, p: retunes.append(p), **kw)
        return metrics, mon

    def test_sustained_drift_fires_exactly_once(self):
        fired = []
        metrics, mon = self.make(fired, sustain=3, cooldown_s=30.0)
        metrics.p95 = 0.5  # 4x over the band
        assert not mon.poll(now=0.0)
        assert not mon.poll(now=1.0)
        assert mon.poll(now=2.0)  # third consecutive -> fire
        assert fired == [0.5]
        assert metrics.resets == 1  # stale window cleared after re-tune
        # cooldown: still drifting, but no flapping
        assert not mon.poll(now=3.0)
        assert not mon.poll(now=4.0)
        assert not mon.poll(now=5.0)
        assert fired == [0.5]

    def test_transient_spike_does_not_fire(self):
        fired = []
        metrics, mon = self.make(fired, sustain=3)
        metrics.p95 = 0.5
        mon.poll(now=0.0)
        mon.poll(now=1.0)
        metrics.p95 = 0.05  # recovered: sustain counter resets
        mon.poll(now=2.0)
        metrics.p95 = 0.5
        mon.poll(now=3.0)
        mon.poll(now=4.0)
        assert fired == []

    def test_refires_after_cooldown(self):
        fired = []
        metrics, mon = self.make(fired, sustain=1, cooldown_s=10.0)
        metrics.p95 = 0.5
        assert mon.poll(now=0.0)
        assert not mon.poll(now=5.0)  # inside cooldown
        assert mon.poll(now=11.0)  # cooldown over, drift persists
        assert len(fired) == 2

    def test_short_window_never_fires(self):
        fired = []
        metrics, mon = self.make(fired, sustain=1)
        metrics.count = 3  # below slo.min_window
        metrics.p95 = 9.9
        assert not mon.poll(now=0.0)
        assert fired == []

    def test_retune_exceptions_do_not_leak_state(self):
        metrics = _FakeMetrics()
        slo = SLO(latency_s=0.1, min_window=16)

        def boom(m, p):
            raise RuntimeError("probe failed")

        mon = SloMonitor(metrics, "m", slo, retune=boom, sustain=1)
        metrics.p95 = 0.5
        with pytest.raises(RuntimeError):
            mon.poll(now=0.0)
        assert mon._in_progress is False  # guard released


class TestWindowMetrics:
    def test_window_tracks_recent_only_after_reset(self):
        m = ServeMetrics(window_k=8)
        for _ in range(20):
            m.record_completed("a", 1.0, 0.0, 1)
        assert m.window_count("a") == 8  # bounded by K
        assert m.window_quantile("a", 95.0) == pytest.approx(1.0)
        m.reset_window("a")
        assert m.window_count("a") == 0
        m.record_completed("a", 5.0, 0.0, 1)
        assert m.window_quantile("a", 95.0) == pytest.approx(5.0)
        # lifetime reservoir survives the window reset
        snap = m.snapshot()
        assert snap["models"]["a"]["completed"] == 21

    def test_merge_concatenates_windows(self):
        a, b = ServeMetrics(window_k=8), ServeMetrics(window_k=8)
        for _ in range(4):
            a.record_completed("m", 1.0, 0.0, 1)
        for _ in range(4):
            b.record_completed("m", 3.0, 0.0, 1)
        snap = ServeMetrics.merge([a, b])
        w = snap["models"]["m"]["window"]
        assert w["count"] == 8
        # union of raw samples, not percentile-of-percentiles
        assert w["latency_s"]["p50"] == pytest.approx(2.0, abs=1.01)

    def test_config_swaps_counted(self):
        m = ServeMetrics()
        m.record_config_swap("m", tune_s=0.5)
        m.record_config_swap("m")
        assert m.snapshot()["models"]["m"]["config_swaps"] == 2


class TestServeIntegration:
    @pytest.fixture()
    def tuned_engine(self, points, tmp_path):
        engine = ServeEngine(n_workers=1)
        store = TuneStore(tmp_path / "store.json")
        slo = SLO(latency_s=30.0, precision_rtol=1e-2)
        engine.register("m", Fmm("laplace"), points, slo=slo, store=store,
                        tune_grid=tiny_grid(), tune_seed=SEED)
        yield engine, store, slo
        engine.stop()

    def test_register_applies_tuned_config(self, tuned_engine, points):
        engine, store, slo = tuned_engine
        model = engine._model("m")
        assert model.tuned is not None
        assert model.geometry.fmm.order == model.tuned.order
        stats = engine.plan_stats()["m"]["config"]
        assert stats["order"] == model.tuned.order
        assert stats["precision"] == model.tuned.precision
        # the vote/store agree on a second registration (store hit)
        engine2 = ServeEngine(n_workers=1)
        engine2.register("m", Fmm("laplace"), points, slo=slo, store=store,
                         tune_grid=tiny_grid(), tune_seed=SEED)
        assert engine2._model("m").tuned == model.tuned

    def test_served_answers_bit_identical_per_version(self, tuned_engine,
                                                      points):
        engine, _, _ = tuned_engine
        model = engine._model("m")
        dens = np.random.default_rng(1).standard_normal(model.expected)
        with engine:
            a = engine.evaluate("m", dens)
            b = engine.evaluate("m", dens)
            assert np.array_equal(a, b)
            # swap to a different config: new version, still bit-stable
            new = TuneConfig(order=4, max_points=144, precision="fp64",
                             max_batch=4, max_wait_ms=1.0)
            res = engine.apply_tuned_config("m", new)
            assert res["swapped"]
            c = engine.evaluate("m", dens)
            d = engine.evaluate("m", dens)
            assert np.array_equal(c, d)
        assert engine._model("m").tuned == new

    def test_swap_to_same_config_is_noop(self, tuned_engine):
        engine, _, _ = tuned_engine
        model = engine._model("m")
        res = engine.apply_tuned_config("m", model.tuned)
        assert res["swapped"] is False

    def test_monitor_drift_triggers_engine_retune(self, tuned_engine):
        engine, _, slo = tuned_engine
        calls = []
        real_retune = engine.retune

        def counting(name, observed_s=None):
            calls.append(observed_s)
            return real_retune(name, observed_s=observed_s)

        mon = SloMonitor(engine.metrics, "m", slo, retune=counting,
                         sustain=2, cooldown_s=60.0)
        # synthesize a sustained drift in the sliding window
        for _ in range(slo.min_window):
            engine.metrics.record_completed(
                "m", slo.latency_s * 3.0, 0.0, 1)
        assert not mon.poll(now=0.0)
        assert mon.poll(now=1.0)
        assert len(calls) == 1
        assert engine.metrics.window_count("m") == 0  # reset after re-tune
        assert not mon.poll(now=2.0)  # no flapping

    def test_retune_without_slo_raises(self, points):
        engine = ServeEngine(n_workers=1)
        engine.register("plain", Fmm("laplace"), points)
        with pytest.raises(ValueError):
            engine.retune("plain")
        engine.stop()


class TestDistVote:
    def test_vote_reduction_modal_with_deterministic_ties(self, points,
                                                          monkeypatch):
        from repro.serve.dist_engine import DistServeEngine
        import repro.tune.search as search_mod

        cfg_x = TuneConfig(order=4, max_points=64)
        cfg_y = TuneConfig(order=4, max_points=144)

        def rigged(pts, kernel="laplace", slo=None, grid=None, seed=0,
                   sample=None):
            return cfg_x if seed % 4 == 0 else cfg_y  # rank 0 dissents

        monkeypatch.setattr(search_mod, "propose_config", rigged)
        eng = DistServeEngine(nranks=4)
        won = eng._vote_config(points, get_kernel("laplace"), 4, SLO(),
                               None, 0, None)
        assert won == cfg_y  # modal proposal wins over the dissenter

    @pytest.mark.parametrize("p", [2, 4])
    def test_collective_vote_agrees_and_serves(self, points, tmp_path, p):
        from repro.serve.dist_engine import DistServeEngine

        store = TuneStore(tmp_path / f"dist{p}.json")
        slo = SLO(latency_s=30.0, precision_rtol=1e-2)
        eng = DistServeEngine(nranks=p)
        m = eng.register("m", points, slo=slo, store=store,
                         tune_grid=tiny_grid(), tune_seed=SEED)
        assert m.tuned is not None and m.slo == slo
        # the agreed config is persisted under the dist backend key
        fp = geometry_fingerprint(points)
        assert store.get(fp, "laplace", slo, backend=f"dist{p}") == m.tuned
        # a second engine takes the store-hit path to the same config
        eng2 = DistServeEngine(nranks=p)
        m2 = eng2.register("m", points, slo=slo, store=store,
                          tune_grid=tiny_grid(), tune_seed=SEED)
        assert m2.tuned == m.tuned
        dens = np.random.default_rng(2).standard_normal(m.expected)
        assert np.array_equal(eng.evaluate("m", dens),
                              eng.evaluate("m", dens))

    def test_router_snapshot_exposes_tuned_config(self, points, tmp_path):
        from repro.serve.dist_engine import DistServeEngine
        from repro.serve.router import Router

        eng = DistServeEngine(nranks=2)
        eng.register("m", points, slo=SLO(latency_s=30.0,
                                          precision_rtol=1e-2),
                     tune_grid=tiny_grid())
        snap = Router(eng).metrics_snapshot()
        assert snap["tuned"]["m"]["config"]["order"] == 4
        assert snap["tuned"]["m"]["slo"]["latency_s"] == 30.0


class TestBatcherLimits:
    def test_per_model_limits_override_engine_defaults(self):
        from repro.serve.batcher import MicroBatcher
        from repro.serve.scheduler import FairQueue

        limits = {"tuned": (16, 4.0)}
        b = MicroBatcher(FairQueue(), max_batch=8, max_wait_ms=2.0,
                         limits=limits.get)
        assert b._limits_for("tuned") == (16, 0.004)
        assert b._limits_for("plain") == (8, 0.002)
