"""Fault-tolerant distributed serving plane: failover matrix + router.

The robustness contract under test (ISSUE 7): with a seeded fault plan
active, a request never observes the fault — it observes either the
**bit-identical** fault-free answer (checkpoint-resume retry on the same
shard group, or failover to a surviving replica) or a **typed rejection**
(`Overloaded`, `DeadlineExceeded`, `ShardUnavailable`) — and never hangs.

The matrix runs every victim rank x {crash, straggler, in-flight
corruption} at p in {2, 4, 8}, plus wait-faults (inside the pipelined
nonblocking schedule) and GPU device faults (which must degrade to the
bit-identical CPU path).
"""

import threading
import time

import numpy as np
import pytest

from repro.datasets import make_distribution
from repro.mpi.faults import Fault, FaultPlan, RetryPolicy
from repro.perf.model import serve_span_summary
from repro.perf.trace import TraceRecorder
from repro.serve import (
    DistServeEngine,
    Overloaded,
    Router,
    ServeMetrics,
    ShardUnavailable,
)
from repro.serve.scheduler import DeadlineExceeded, retry_after_hint

ORDER = 4
BOX = 40
#: Per-dispatch SPMD timeout: the anti-hang bound for the whole suite.
RUN_TIMEOUT = 30.0


def _points(n, seed=0):
    return make_distribution("ellipsoid", n, seed=seed)


def _engine(p, n, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(max_attempts=3, backoff=0.0)
    )
    eng = DistServeEngine(nranks=p, run_timeout_s=RUN_TIMEOUT, **kwargs)
    eng.register(
        "m", _points(n), placement="sharded",
        order=ORDER, max_points_per_box=BOX,
    )
    return eng


@pytest.fixture(scope="module", params=[2, 4, 8])
def matrix_engine(request):
    p = request.param
    n = 400 if p < 8 else 800
    eng = _engine(p, n)
    rng = np.random.default_rng(7)
    dens = rng.standard_normal(eng._model("m").expected)
    ref = eng.evaluate("m", dens)
    return eng, dens, ref


class TestFailoverMatrix:
    """Every victim rank x every fault class: bit-identical or typed."""

    def _cases(self, p):
        for victim in range(p):
            yield FaultPlan(
                [Fault("crash", rank=victim, op="phase", phase="D2T",
                       attempts=1)],
                seed=victim,
            ), f"crash@r{victim}"
            yield FaultPlan(
                [Fault("straggle", rank=victim, op="phase", phase="S2U",
                       seconds=0.15, sleep=True, attempts=1)],
                seed=victim,
            ), f"straggle@r{victim}"
            yield FaultPlan(
                [Fault("bitflip", rank=victim, op="send", index=0,
                       attempts=1)],
                seed=victim,
            ), f"bitflip@r{victim}"

    def test_matrix(self, matrix_engine):
        eng, dens, ref = matrix_engine
        p = eng.nranks
        for plan, label in self._cases(p):
            eng.set_faults(plan)
            t0 = time.monotonic()
            try:
                out = eng.evaluate("m", dens)
            except (ShardUnavailable, DeadlineExceeded, Overloaded) as err:
                # typed rejection is an allowed outcome — but with a
                # budget-1 fault and 3 attempts it means retry failed,
                # which would be a regression worth seeing
                pytest.fail(f"{label}: typed rejection {err!r} instead "
                            f"of recovery")
            elapsed = time.monotonic() - t0
            assert np.array_equal(out, ref), (
                f"{label}: recovered answer is not bit-identical"
            )
            assert elapsed < 2 * RUN_TIMEOUT, f"{label}: near-hang"
        eng.set_faults(None)

    def test_wait_crash(self, matrix_engine):
        """Crash inside an in-flight nonblocking wait still recovers."""
        eng, dens, ref = matrix_engine
        victim = 1 % eng.nranks
        eng.set_faults(FaultPlan(
            [Fault("crash", rank=victim, op="wait", attempts=1)]
        ))
        out = eng.evaluate("m", dens)
        eng.set_faults(None)
        assert np.array_equal(out, ref)

    def test_crash_pre_checkpoint(self, matrix_engine):
        """A crash before the checkpoint commits restarts from scratch."""
        eng, dens, ref = matrix_engine
        eng.set_faults(FaultPlan(
            [Fault("crash", rank=0, op="phase", phase="S2U", attempts=1)]
        ))
        out = eng.evaluate("m", dens)
        eng.set_faults(None)
        assert np.array_equal(out, ref)


class TestGpuFault:
    def test_device_fault_degrades_bit_identical(self):
        """GPU device faults on every rank -> the pure-CPU answer."""
        p, n = 2, 400
        eng = _engine(p, n)  # CPU reference model "m"
        eng.register(
            "g", _points(n), placement="sharded",
            order=ORDER, max_points_per_box=BOX, use_gpu=True,
            warm=False,
        )
        rng = np.random.default_rng(3)
        dens = rng.standard_normal(eng._model("m").expected)
        ref = eng.evaluate("m", dens)
        eng.set_faults(FaultPlan(
            [Fault("gpu", rank=r, op="launch", phase="*", attempts=1)
             for r in range(p)]
        ))
        out = eng.evaluate("g", dens)
        eng.set_faults(None)
        assert np.array_equal(out, ref)


class TestReplicatedFailover:
    def test_failover_to_surviving_replica(self):
        p, n = 2, 400
        eng = DistServeEngine(
            nranks=p, run_timeout_s=RUN_TIMEOUT,
            retry=RetryPolicy(max_attempts=3, backoff=0.0),
        )
        eng.register(
            "r", _points(n), placement="replicated", replicas=2,
            order=ORDER, max_points_per_box=BOX,
        )
        rng = np.random.default_rng(5)
        dens = rng.standard_normal(eng._model("r").expected)
        ref = eng.evaluate("r", dens)
        # replica 0 always crashes: every request must fail over to
        # replica 1 and come back bit-identical
        eng.set_faults(FaultPlan(
            [Fault("crash", rank=0, op="phase", phase="D2T",
                   attempts=1_000_000)]
        ))
        for _ in range(4):
            assert np.array_equal(eng.evaluate("r", dens), ref)
        eng.set_faults(None)
        # replica 0 accumulated failures; health knows
        assert eng.health.snapshot()[0]["failures"] >= 1

    def test_all_replicas_down_is_typed(self):
        p, n = 2, 400
        eng = DistServeEngine(
            nranks=p, run_timeout_s=RUN_TIMEOUT,
            retry=RetryPolicy(max_attempts=2, backoff=0.0),
            breaker_threshold=1, breaker_cooldown_s=60.0,
        )
        eng.register(
            "r", _points(n), placement="replicated", replicas=2,
            order=ORDER, max_points_per_box=BOX,
        )
        dens = np.ones(eng._model("r").expected)
        eng.set_faults(FaultPlan([
            Fault("crash", rank=0, op="phase", phase="D2T",
                  attempts=1_000_000),
            Fault("crash", rank=1, op="phase", phase="D2T",
                  attempts=1_000_000),
        ]))
        with pytest.raises(ShardUnavailable):
            eng.evaluate("r", dens)
        # both breakers open now: the next request fast-fails typed
        with pytest.raises(ShardUnavailable):
            eng.evaluate("r", dens)
        eng.set_faults(None)


class TestCircuitBreaker:
    def test_shard_breaker_opens_then_recovers(self):
        p, n = 2, 400
        eng = DistServeEngine(
            nranks=p, run_timeout_s=RUN_TIMEOUT,
            retry=RetryPolicy(max_attempts=2, backoff=0.0),
            breaker_threshold=2, breaker_cooldown_s=0.2,
        )
        eng.register("m", _points(n), placement="sharded",
                     order=ORDER, max_points_per_box=BOX)
        dens = np.ones(eng._model("m").expected)
        ref = eng.evaluate("m", dens)
        eng.set_faults(FaultPlan(
            [Fault("crash", rank=1, op="phase", phase="D2T",
                   attempts=1_000_000)]
        ))
        with pytest.raises(ShardUnavailable):
            eng.evaluate("m", dens)
        assert eng.breaker("m/shard").state == "open"
        # open breaker: immediate typed rejection, no dispatch
        t0 = time.monotonic()
        with pytest.raises(ShardUnavailable):
            eng.evaluate("m", dens)
        assert time.monotonic() - t0 < 0.1
        # cooldown passes, faults lifted: half-open probe succeeds and
        # closes the breaker; answers are bit-identical again
        eng.set_faults(None)
        time.sleep(0.25)
        assert eng.breaker("m/shard").state == "half-open"
        assert np.array_equal(eng.evaluate("m", dens), ref)
        assert eng.breaker("m/shard").state == "closed"

    def test_fallback_replica_serves_when_shard_down(self):
        p, n = 2, 400
        eng = DistServeEngine(
            nranks=p, run_timeout_s=RUN_TIMEOUT,
            retry=RetryPolicy(max_attempts=2, backoff=0.0),
            breaker_threshold=1, breaker_cooldown_s=60.0,
        )
        pts = _points(n)
        eng.register("m", pts, placement="sharded", fallback_replica=True,
                     order=ORDER, max_points_per_box=BOX)
        # a single-replica twin = exactly what the fallback computes
        eng.register("twin", pts, placement="replicated", replicas=1,
                     order=ORDER, max_points_per_box=BOX)
        dens = np.ones(eng._model("m").expected)
        twin_ref = eng.evaluate("twin", dens)
        # rank 1 always crashes -> the shard group (which spans rank 1)
        # dies and its breaker opens; the fallback replica (projected
        # onto rank 0, which the plan does not target) takes over
        eng.set_faults(FaultPlan(
            [Fault("crash", rank=1, op="phase", phase="D2T",
                   attempts=1_000_000)]
        ))
        with pytest.raises(ShardUnavailable):
            eng.evaluate("m", dens)
        out = eng.evaluate("m", dens)  # degraded path
        eng.set_faults(None)
        assert np.array_equal(out, twin_ref), (
            "fallback answer must equal the single-replica twin bitwise"
        )


class TestDeadlines:
    def test_straggler_past_deadline_is_typed(self):
        eng = _engine(2, 400)
        dens = np.ones(eng._model("m").expected)
        eng.evaluate("m", dens)  # warm
        eng.set_faults(FaultPlan(
            [Fault("straggle", rank=1, op="phase", phase="S2U",
                   seconds=5.0, sleep=True, attempts=1_000_000)]
        ))
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            eng.evaluate("m", dens, deadline=time.monotonic() + 0.3)
        eng.set_faults(None)
        # bounded: deadline + abort grace, nowhere near the 5s sleep x3
        assert time.monotonic() - t0 < 4.0


class TestRouter:
    def test_routes_and_merges_metrics(self):
        eng = _engine(2, 400, trace=TraceRecorder())
        rng = np.random.default_rng(11)
        dens = rng.standard_normal(eng._model("m").expected)
        ref = eng.evaluate("m", dens)
        with Router(eng, n_dispatchers=2, max_queue=8) as router:
            outs = [router.evaluate("m", dens, timeout_s=30.0)
                    for _ in range(3)]
        for out in outs:
            assert np.array_equal(out, ref)
        snap = router.metrics_snapshot(elapsed_s=1.0)
        assert snap["models"]["m"]["completed"] == 3
        # per-rank apply reservoirs merged under their own keys
        assert "m@rank0" in snap["models"]
        assert "health" in snap and "breakers" in snap
        # heartbeat spans: every rank beat on every successful dispatch
        summary = serve_span_summary(eng._trace)
        assert summary["heartbeats"]["m"][0] >= 4  # warm + ref + 3 routed
        assert summary["dispatches"]["m"]["count"] == 3

    def test_unavailable_fast_fails_at_submit(self):
        eng = _engine(
            2, 400,
            retry=RetryPolicy(max_attempts=1),
            breaker_threshold=1, breaker_cooldown_s=60.0,
        )
        dens = np.ones(eng._model("m").expected)
        eng.set_faults(FaultPlan(
            [Fault("crash", rank=0, op="phase", phase="D2T",
                   attempts=1_000_000)]
        ))
        with pytest.raises(ShardUnavailable):
            eng.evaluate("m", dens)
        eng.set_faults(None)
        with Router(eng, n_dispatchers=1, max_queue=4) as router:
            with pytest.raises(ShardUnavailable):
                router.submit("m", dens)
        assert router.metrics.snapshot()["rejected"] == 1

    def test_overloaded_carries_retry_after(self):
        eng = _engine(2, 400)
        dens = np.ones(eng._model("m").expected)
        router = Router(eng, n_dispatchers=1, max_queue=1)
        # router not started: the queue can only fill
        router.submit("m", dens)
        with pytest.raises(Overloaded) as exc_info:
            router.submit("m", dens)
        assert exc_info.value.retry_after_s is not None
        assert exc_info.value.retry_after_s > 0.0
        router.start()
        router.stop()

    def test_retry_after_hint_scales_with_depth(self):
        base = retry_after_hint(0, 0.1, 2)
        deep = retry_after_hint(20, 0.1, 2)
        assert deep > base
        assert retry_after_hint(10 ** 9, 0.1, 1) == 60.0  # capped
        assert retry_after_hint(0, None, 4) >= 0.01  # floor, no samples


class TestLoadgen:
    def test_open_loop_mode(self):
        from repro.serve.loadgen import run_load

        eng = _engine(2, 400)
        with Router(eng, n_dispatchers=2, max_queue=16) as router:
            summary = run_load(
                router, ["m"], duration_s=1.0, clients=2,
                timeout_s=20.0, mode="open", rate_rps=10.0,
            )
        lg = summary["loadgen"]
        assert lg["mode"] == "open"
        assert lg["ok"] > 0
        assert lg["errors"] == 0, lg["error_samples"]

    def test_open_loop_needs_rate(self):
        from repro.serve.loadgen import run_load

        with pytest.raises(ValueError):
            run_load(None, ["m"], mode="open")
        with pytest.raises(ValueError):
            run_load(None, ["m"], mode="sideways")


class TestMetricsMerge:
    def test_union_quantiles_not_averaged(self):
        a, b = ServeMetrics(), ServeMetrics()
        # a: tight latencies; b: one outlier — the merged p99 must see
        # the outlier (union), not average two per-part p99s
        for v in [0.010] * 99:
            a.record_completed("m", v, 0.0, 1)
        b.record_completed("m", 1.0, 0.0, 1)
        merged = ServeMetrics.merge([a, b])
        union = [0.010] * 99 + [1.0]
        expect_p99 = float(np.percentile(np.asarray(union), 99.0))
        assert merged["models"]["m"]["latency_s"]["p99"] == pytest.approx(
            expect_p99
        )
        avg_of_p99s = (
            a.snapshot()["models"]["m"]["latency_s"]["p99"]
            + b.snapshot()["models"]["m"]["latency_s"]["p99"]
        ) / 2
        assert merged["models"]["m"]["latency_s"]["p99"] != pytest.approx(
            avg_of_p99s
        )
        assert merged["models"]["m"]["completed"] == 100

    def test_counters_sum_and_causes_merge(self):
        a, b = ServeMetrics(), ServeMetrics()
        a.record_retry("RankCrash")
        a.record_retry("CorruptMessage")
        b.record_retry("RankCrash")
        a.record_rejected()
        b.record_queue_depth(3)
        a.record_queue_depth(7)
        merged = ServeMetrics.merge([a, b])
        assert merged["retried"] == 3
        assert merged["retried_by_cause"] == {
            "RankCrash": 2, "CorruptMessage": 1,
        }
        assert merged["rejected"] == 1
        assert merged["queue_depth"]["peak"] == 7

    def test_service_p95_feeds_retry_after(self):
        m = ServeMetrics()
        for v in (0.1, 0.2, 0.3):
            m.record_completed("m", v + 0.05, 0.05, 1)
        p95 = m.service_p95()
        assert p95 is not None and 0.1 <= p95 <= 0.3
        assert m.service_p95("m") == p95
        assert m.service_p95("nope") is None


class TestRetryPolicy:
    def test_delay_deterministic_exponential_capped(self):
        pol = RetryPolicy(max_attempts=5, backoff=0.1, backoff_factor=2.0,
                          max_backoff=0.5, jitter=0.1, seed=42)
        d = [pol.delay(k) for k in range(1, 6)]
        # deterministic: same policy, same delays
        pol2 = RetryPolicy(max_attempts=5, backoff=0.1, backoff_factor=2.0,
                           max_backoff=0.5, jitter=0.1, seed=42)
        assert d == [pol2.delay(k) for k in range(1, 6)]
        # exponential up to the cap, jitter only ever adds (bounded)
        assert 0.1 <= d[0] <= 0.1 * 1.1
        assert 0.2 <= d[1] <= 0.2 * 1.1
        assert 0.4 <= d[2] <= 0.4 * 1.1
        assert 0.5 <= d[3] <= 0.5 * 1.1  # capped at max_backoff
        assert 0.5 <= d[4] <= 0.5 * 1.1
        # different seed, different jitter
        pol3 = RetryPolicy(max_attempts=5, backoff=0.1, seed=43,
                           jitter=0.1)
        assert pol3.delay(1) != pol.delay(1)

    def test_no_backoff_means_zero_delay(self):
        pol = RetryPolicy(max_attempts=3)
        assert pol.delay(1) == 0.0
        assert pol.delay(2) == 0.0
        assert RetryPolicy(backoff=0.1).delay(0) == 0.0

    def test_recovery_spans_carry_backoff(self):
        trace = TraceRecorder()
        eng = _engine(
            2, 400,
            retry=RetryPolicy(max_attempts=3, backoff=0.01, seed=9),
            trace=trace,
        )
        dens = np.ones(eng._model("m").expected)
        ref = eng.evaluate("m", dens)
        eng.set_faults(FaultPlan(
            [Fault("crash", rank=1, op="phase", phase="D2T", attempts=1)]
        ))
        out = eng.evaluate("m", dens)
        eng.set_faults(None)
        assert np.array_equal(out, ref)
        spans = [e for e in trace.span_events()
                 if e.phase.startswith("RECOVERY:retry")]
        assert spans, "retry must leave a RECOVERY span"
        assert "RankCrash" in spans[0].phase
        assert "backoff=" in spans[0].phase
        summary = serve_span_summary(trace)
        assert summary["retries_by_cause"].get("RankCrash", 0) >= 1
        assert summary["backoff_s"] > 0.0


class TestConcurrentClients:
    def test_replicated_serves_concurrently_bit_identical(self):
        eng = DistServeEngine(nranks=2, run_timeout_s=RUN_TIMEOUT)
        eng.register("r", _points(400), placement="replicated",
                     replicas=2, order=ORDER, max_points_per_box=BOX)
        rng = np.random.default_rng(13)
        dens = rng.standard_normal(eng._model("r").expected)
        ref = eng.evaluate("r", dens)
        results, errors = [], []

        def client():
            try:
                results.append(eng.evaluate("r", dens))
            except BaseException as err:  # noqa: BLE001
                errors.append(err)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors, errors
        assert len(results) == 6
        for out in results:
            assert np.array_equal(out, ref)
