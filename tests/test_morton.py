"""Unit and property tests for the Morton key algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import morton


coords = st.integers(min_value=0, max_value=(1 << morton.MAX_DEPTH) - 1)
levels = st.integers(min_value=0, max_value=morton.MAX_DEPTH)


def aligned(c: int, lev: int) -> int:
    step = 1 << (morton.MAX_DEPTH - lev)
    return (c // step) * step


class TestEncodeDecode:
    @given(coords, coords, coords)
    @settings(max_examples=200, deadline=None)
    def test_anchor_roundtrip(self, x, y, z):
        oct_id = morton.make_oct(x, y, z, morton.MAX_DEPTH)
        ax, ay, az = morton.anchor(oct_id)
        assert (ax, ay, az) == (x, y, z)

    @given(coords, coords, coords, levels)
    @settings(max_examples=200, deadline=None)
    def test_level_roundtrip(self, x, y, z, lev):
        oct_id = morton.make_oct(
            aligned(x, lev), aligned(y, lev), aligned(z, lev), lev
        )
        assert morton.level(oct_id) == lev
        assert morton.is_valid(np.array([oct_id]))[0]

    def test_encode_points_matches_scaling(self, rng):
        pts = rng.random((500, 3))
        keys = morton.encode_points(pts)
        x, y, z = morton.anchor(keys)
        scaled = (pts * (1 << morton.MAX_DEPTH)).astype(np.int64)
        np.testing.assert_array_equal(np.stack([x, y, z], axis=1), scaled)

    def test_encode_points_clips_boundary(self):
        pts = np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0], [2.0, -1.0, 0.5]])
        keys = morton.encode_points(pts)
        assert morton.is_valid(keys).all()

    def test_encode_points_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            morton.encode_points(np.zeros((5, 2)))

    def test_coarser_depth_encoding(self, rng):
        pts = rng.random((100, 3))
        keys = morton.encode_points(pts, depth=5)
        assert np.all(morton.level(keys) == 5)
        fine = morton.encode_points(pts)
        assert np.all(morton.ancestor_at(fine, np.full(100, 5)) == keys)


class TestHierarchy:
    @given(coords, coords, coords, st.integers(min_value=1, max_value=morton.MAX_DEPTH))
    @settings(max_examples=200, deadline=None)
    def test_parent_inverts_children(self, x, y, z, lev):
        oct_id = morton.make_oct(
            aligned(x, lev - 1), aligned(y, lev - 1), aligned(z, lev - 1), lev - 1
        )
        kids = morton.children(np.array([oct_id], dtype=np.uint64))[0]
        assert len(set(kids.tolist())) == 8
        assert np.all(morton.parent(kids) == oct_id)
        assert np.all(morton.is_ancestor(np.full(8, oct_id, np.uint64), kids))

    def test_root_parent_is_root(self):
        assert morton.parent(np.array([morton.ROOT]))[0] == morton.ROOT

    def test_children_of_max_depth_raises(self):
        deepest = morton.make_oct(0, 0, 0, morton.MAX_DEPTH)
        with pytest.raises(ValueError):
            morton.children(np.array([deepest], dtype=np.uint64))

    @given(coords, coords, coords, levels, levels)
    @settings(max_examples=200, deadline=None)
    def test_ancestor_at(self, x, y, z, l1, l2):
        fine, coarse = max(l1, l2), min(l1, l2)
        oct_id = morton.make_oct(
            aligned(x, fine), aligned(y, fine), aligned(z, fine), fine
        )
        anc = morton.ancestor_at(oct_id, np.int64(coarse))
        assert morton.level(anc) == coarse
        assert morton.is_ancestor_or_equal(anc, oct_id)

    def test_descendant_id_interval(self, rng):
        """All descendants of a box lie in (id, deepest_last_descendant]."""
        pts = rng.random((200, 3))
        keys = np.sort(morton.encode_points(pts))
        box = morton.ancestor_at(keys[50], np.int64(3))
        lo = morton.deepest_first_descendant(np.array([box]))[0]
        hi = morton.deepest_last_descendant(np.array([box]))[0]
        inside = (keys >= lo) & (keys <= hi)
        covered = morton.ancestor_at(keys, np.full(keys.size, 3)) == box
        np.testing.assert_array_equal(inside, covered)

    def test_sorted_ids_are_preorder(self):
        """Parents sort before all their descendants."""
        root = np.array([morton.ROOT], dtype=np.uint64)
        kids = morton.children(root)[0]
        grand = morton.children(kids).ravel()
        for k, g8 in zip(kids, morton.children(kids)):
            assert k < g8.min()
        assert morton.ROOT < np.concatenate([kids, grand]).min()

    def test_ancestors_of(self, rng):
        keys = morton.encode_points(rng.random((50, 3)))
        anc = morton.ancestors_of(keys)
        assert morton.ROOT in anc
        # every ancestor's parent is present too (closed set)
        nonroot = anc[morton.level(anc) > 0]
        assert np.all(np.isin(morton.parent(nonroot), anc))


class TestAdjacency:
    def test_neighbors_are_adjacent(self, rng):
        keys = morton.encode_points(rng.random((20, 3)))
        boxes = morton.ancestor_at(keys, np.full(20, 4))
        ids, valid = morton.neighbors(boxes)
        for b, row, ok in zip(boxes, ids, valid):
            cand = row[ok]
            assert morton.adjacent(np.full(cand.size, b, np.uint64), cand).all()

    def test_interior_box_has_26_neighbors(self):
        x = 1 << (morton.MAX_DEPTH - 1)  # centre of the cube
        box = morton.make_oct(x, x, x, 3)
        _, valid = morton.neighbors(np.array([box], dtype=np.uint64))
        assert valid.sum() == 26

    def test_corner_box_has_7_neighbors(self):
        box = morton.make_oct(0, 0, 0, 2)
        _, valid = morton.neighbors(np.array([box], dtype=np.uint64))
        assert valid.sum() == 7

    def test_not_adjacent_to_self_or_descendants(self):
        box = morton.make_oct(0, 0, 0, 2)
        kid = morton.children(np.array([box], dtype=np.uint64))[0][3]
        b = np.array([box], dtype=np.uint64)
        assert not morton.adjacent(b, b)[0]
        assert not morton.adjacent(b, np.array([kid]))[0]
        assert morton.closures_touch(b, np.array([kid]))[0]

    def test_adjacency_is_symmetric(self, rng):
        keys = morton.encode_points(rng.random((60, 3)))
        a = morton.ancestor_at(keys[:30], np.full(30, 3))
        b = morton.ancestor_at(keys[30:], np.full(30, 5))
        np.testing.assert_array_equal(morton.adjacent(a, b), morton.adjacent(b, a))

    def test_diagonal_touch_counts_as_adjacent(self):
        half = 1 << (morton.MAX_DEPTH - 1)
        a = morton.make_oct(0, 0, 0, 1)
        b = morton.make_oct(half, half, half, 1)
        assert morton.adjacent(np.array([a]), np.array([b]))[0]
