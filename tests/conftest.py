"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.datasets import ellipsoid_surface, plummer_cluster, uniform_cube


@pytest.fixture
def rng():
    return np.random.default_rng(20260708)


@pytest.fixture
def uniform_points():
    return uniform_cube(2000, seed=1)


@pytest.fixture
def ellipsoid_points():
    return ellipsoid_surface(2000, seed=2)


@pytest.fixture
def plummer_points():
    return plummer_cluster(2000, seed=3)


@pytest.fixture(params=["uniform", "ellipsoid", "plummer"])
def any_points(request):
    maker = {
        "uniform": uniform_cube,
        "ellipsoid": ellipsoid_surface,
        "plummer": plummer_cluster,
    }[request.param]
    return maker(1500, seed=7)
