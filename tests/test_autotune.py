"""Tests for the points-per-box autotuner (paper §V extension)."""

import pytest

from repro.core.autotune import TuneResult, autotune_points_per_box
from repro.datasets import uniform_cube


class TestAutotune:
    def test_cpu_tuning_returns_candidate(self):
        pts = uniform_cube(4000, seed=3)
        res = autotune_points_per_box(
            pts, order=4, candidates=(25, 100, 400), sample=None
        )
        assert res.best_q in (25, 100, 400)
        assert res.metric == "wall"
        assert set(res.costs) == {25, 100, 400}
        assert all(c > 0 for c in res.costs.values())

    def test_gpu_tuning_prefers_bigger_boxes(self):
        """The device model should penalise tiny boxes harder than the
        CPU does (the paper: GPU runs used ~4x bigger q)."""
        pts = uniform_cube(12_000, seed=4)
        res = autotune_points_per_box(
            pts, order=4, candidates=(16, 128, 512), sample=None, target="gpu"
        )
        assert res.metric == "device-model"
        assert res.best_q >= 128

    def test_ranked_sorted_by_cost(self):
        r = TuneResult(best_q=8, costs={8: 0.1, 16: 0.4, 4: 0.2}, metric="wall")
        assert [q for q, _ in r.ranked()] == [8, 4, 16]

    def test_sampling_caps_size(self):
        pts = uniform_cube(5000, seed=5)
        res = autotune_points_per_box(
            pts, order=4, candidates=(64,), sample=1000
        )
        assert res.best_q == 64

    def test_invalid_target(self):
        with pytest.raises(ValueError, match="target"):
            autotune_points_per_box(uniform_cube(100), target="tpu")
