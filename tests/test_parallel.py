"""Intra-rank parallel plan execution: bit-identity, determinism, pools.

The tile executor's contract is that a compiled plan applied through a
``TaskPool`` of *any* width produces byte-for-byte the same result as
the serial apply — the pool only reorders independent tile GEMMs across
disjoint outputs and keeps every combine in compiled tile order.  The
matrix here exercises that claim across kernels, precisions, thread
counts, the distributed driver, checkpoint resume, patched plans and
concurrent serve batches, plus the trace-signature replay guarantee.

Speedup claims live in ``benchmarks/bench_parallel.py`` (and its CI
gate); the one perf assertion here — 2 threads not slower than 1.1x
serial at tiny N — only runs on multi-core hosts.
"""

import os
import time

import numpy as np
import pytest

from repro.core.evaluator import FmmEvaluator
from repro.core.fmm import Fmm
from repro.core.lists import build_lists
from repro.core.parallel import (
    TaskPool,
    rank_pool_size,
    shared_pool,
    shared_pool_stats,
)
from repro.core.tree import build_tree
from repro.datasets import uniform_cube
from repro.dist.driver import DistributedFmm
from repro.kernels import get_kernel
from repro.mpi import run_spmd
from repro.perf.model import parallel_report
from repro.perf.trace import TraceRecorder
from repro.util.blas import limit_blas_threads
from repro.util.timer import PhaseProfile

N = 900
ORDER = 4
BOX = 40

KERNELS = ("laplace", "yukawa", "stokes")
PRECISIONS = ("fp64", "fp32")
THREADS = (1, 2, 4, 8)


def _density(kern, n, seed=7):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n * kern.source_dim)


@pytest.fixture(scope="module")
def geometry():
    pts = uniform_cube(N, seed=21)
    tree = build_tree(pts, BOX)
    return tree, build_lists(tree)


@pytest.fixture(scope="module")
def compiled(geometry):
    """(evaluator, plan, dens, serial ref, serial multi ref) per case.

    Compiled once per (kernel, precision) and shared across the thread
    sweep; the serial references are computed with BLAS pinned to one
    thread — the same GEMM shapes the pool runs — so the comparison
    isolates the tile scheduler.
    """
    tree, lists = geometry
    cache = {}

    def get(kernel, precision):
        key = (kernel, precision)
        if key not in cache:
            kern = get_kernel(kernel)
            ev = FmmEvaluator(kern, ORDER, precision=precision)
            plan = ev.compile_plan(tree, lists, precision=precision)
            dens = _density(kern, tree.n_points)
            block = np.stack([dens, 2.0 * dens, -dens], axis=1)
            with limit_blas_threads(1):
                ref = ev.evaluate(tree, lists, dens, PhaseProfile(),
                                  plan=plan)
                refm = ev.evaluate_multi(tree, lists, block, PhaseProfile(),
                                         plan=plan)
            cache[key] = (ev, plan, dens, block, ref, refm)
        return cache[key]

    return get


class TestTaskPool:
    def test_results_in_submission_order(self):
        pool = TaskPool(4)
        try:
            results, busy = pool.run(
                [lambda i=i: (time.sleep(0.002 * (7 - i)), i)[1]
                 for i in range(8)]
            )
            assert results == list(range(8))
            assert busy > 0.0
        finally:
            pool.shutdown()

    def test_inline_when_single_thread_or_task(self):
        pool = TaskPool(1)
        results, _ = pool.run([lambda: 1, lambda: 2])
        assert results == [1, 2]
        assert pool._exec is None  # never spun up an executor
        wide = TaskPool(8)
        results, _ = wide.run([lambda: 3])
        assert results == [3]
        assert wide._exec is None

    def test_stats_counters(self):
        pool = TaskPool(2)
        try:
            pool.run([lambda: None] * 5)
            st = pool.stats()
            assert st["threads"] == 2
            assert st["tiles_run"] == 5
            assert st["runs"] == 1
            assert st["tiles_active"] == 0
            assert st["tiles_queued"] == 0
        finally:
            pool.shutdown()

    def test_shared_pool_registry_resizes(self):
        a = shared_pool(2, key="test-shared")
        b = shared_pool(2, key="test-shared")
        assert a is b
        c = shared_pool(3, key="test-shared")
        assert c is not a and c.threads == 3
        assert shared_pool_stats("test-shared")["threads"] == 3
        assert shared_pool_stats("no-such-key") is None
        c.shutdown()

    def test_rank_pool_size_never_oversubscribes(self):
        assert rank_pool_size(4, 1, host_cpus=8) == 4
        assert rank_pool_size(4, 2, host_cpus=8) == 4
        assert rank_pool_size(4, 4, host_cpus=8) == 2
        assert rank_pool_size(4, 8, host_cpus=8) == 1
        assert rank_pool_size(4, 16, host_cpus=8) == 1  # floor at 1
        assert rank_pool_size(1, 1, host_cpus=1) == 1
        # p ranks x per-rank threads <= host cpus (when cpus >= ranks)
        for cpus in (1, 2, 4, 8, 16):
            for p in (1, 2, 4, 8):
                t = rank_pool_size(8, p, host_cpus=cpus)
                if cpus >= p:
                    assert p * t <= max(cpus, p)


class TestBitIdentitySolo:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("threads", THREADS)
    def test_matches_serial(self, compiled, geometry, kernel, precision,
                            threads):
        tree, lists = geometry
        ev, plan, dens, block, ref, refm = compiled(kernel, precision)
        ev.configure_threads(threads)
        try:
            out = ev.evaluate(tree, lists, dens, PhaseProfile(), plan=plan)
            outm = ev.evaluate_multi(tree, lists, block, PhaseProfile(),
                                     plan=plan)
        finally:
            ev.configure_threads(None)
        assert np.array_equal(out, ref)
        assert np.array_equal(outm, refm)

    def test_threads_kwarg_on_fmm_and_compile(self):
        pts = uniform_cube(600, seed=22)
        dens = _density(get_kernel("laplace"), 600)
        serial = Fmm("laplace", order=ORDER, max_points_per_box=BOX)
        splan = serial.plan(pts)
        with limit_blas_threads(1):
            sep = serial.compile_eval_plan(splan)
            ref = serial.evaluate(pts, dens, plan=splan, eval_plan=sep)
        par = Fmm("laplace", order=ORDER, max_points_per_box=BOX, threads=4)
        assert par.evaluator.threads == 4
        pplan = par.plan(pts)
        pep = par.compile_eval_plan(pplan)
        assert np.array_equal(
            par.evaluate(pts, dens, plan=pplan, eval_plan=pep), ref
        )
        # compile_eval_plan(threads=...) reconfigures the pool
        par.compile_eval_plan(pplan, threads=2)
        assert par.evaluator.threads == 2
        assert np.array_equal(
            par.evaluate(pts, dens, plan=pplan, eval_plan=pep), ref
        )


def _dist_body(comm, pts, kernel, precision, threads):
    mine = pts[comm.rank :: comm.size]
    fmm = DistributedFmm(
        kernel=kernel, order=ORDER, max_points_per_box=BOX,
        precision=precision,
    )
    fmm.setup(comm, mine)
    if threads is not None:
        # force the width (bypassing the host-cpu cap) so the pool path
        # actually runs multi-threaded even on small CI hosts
        fmm.evaluator.configure_threads(threads)
    kern = get_kernel(kernel)
    dens = np.random.default_rng(51 + comm.rank).standard_normal(
        len(fmm.owned_points) * kern.source_dim
    )
    return fmm.evaluate(dens)


class TestBitIdentityDistributed:
    @pytest.mark.parametrize("p", [1, 4])
    @pytest.mark.parametrize("kernel,precision", [
        ("laplace", "fp64"), ("laplace", "fp32"),
        ("yukawa", "fp64"), ("stokes", "fp64"),
    ])
    def test_matches_serial_ranks(self, p, kernel, precision):
        pts = uniform_cube(800, seed=31)
        base = run_spmd(p, _dist_body, pts, kernel, precision, None,
                        timeout=560)
        for threads in (1, 4):
            par = run_spmd(p, _dist_body, pts, kernel, precision, threads,
                           timeout=560)
            for a, b in zip(base.values, par.values):
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("threads", [2, 8])
    def test_laplace_thread_sweep(self, threads):
        pts = uniform_cube(800, seed=32)
        base = run_spmd(4, _dist_body, pts, "laplace", "fp64", None,
                        timeout=560)
        par = run_spmd(4, _dist_body, pts, "laplace", "fp64", threads,
                       timeout=560)
        for a, b in zip(base.values, par.values):
            assert np.array_equal(a, b)

    def test_driver_threads_sized_by_rank_count(self):
        pts = uniform_cube(600, seed=33)

        def body(comm):
            fmm = DistributedFmm(order=ORDER, max_points_per_box=BOX,
                                 threads=4)
            fmm.setup(comm, pts[comm.rank :: comm.size])
            return fmm.evaluator.threads

        res = run_spmd(2, body, timeout=560)
        want = rank_pool_size(4, 2)
        assert all(t == want for t in res.values)


class TestCheckpointResume:
    def test_resume_bit_identical_under_pool(self):
        pts = uniform_cube(800, seed=41)

        def body(comm):
            fmm = DistributedFmm(order=ORDER, max_points_per_box=BOX)
            fmm.setup(comm, pts[comm.rank :: comm.size])
            fmm.evaluator.configure_threads(4)
            dens = np.random.default_rng(61 + comm.rank).standard_normal(
                len(fmm.owned_points)
            )
            fresh = fmm.evaluate(dens)
            assert fmm.checkpoint_phase == "upward"
            resumed = fmm.evaluate(dens, resume=True)
            # resuming under a different pool width must not change bits
            fmm.evaluator.configure_threads(2)
            resumed2 = fmm.evaluate(dens, resume=True)
            return fresh, resumed, resumed2

        res = run_spmd(4, body, timeout=560)
        for fresh, resumed, resumed2 in res.values:
            assert np.array_equal(fresh, resumed)
            assert np.array_equal(fresh, resumed2)


class TestPatchedPlans:
    def test_patched_plan_parallel_apply_matches_serial(self):
        rng = np.random.default_rng(71)
        pts = uniform_cube(800, seed=42)
        fmm = Fmm("laplace", order=ORDER, max_points_per_box=BOX)
        plan = fmm.plan(pts)
        eplan = fmm.compile_eval_plan(plan)
        # localized blob motion: the regime patch_plan targets
        center = pts[rng.integers(len(pts))]
        d2 = ((pts - center) ** 2).sum(axis=1)
        moved = np.argpartition(d2, 79)[:80]
        new_pts = pts.copy()
        new_pts[moved] = np.clip(
            new_pts[moved] + rng.normal(scale=0.02, size=(80, 3)),
            1e-9, 1.0 - 1e-9,
        )
        new_plan, delta = fmm.update_plan(plan, new_pts, moved=moved)
        patched = fmm.patch_eval_plan(eplan, plan, new_plan, delta=delta)
        dens = rng.standard_normal(len(pts))
        with limit_blas_threads(1):
            ref = fmm.evaluate(new_pts, dens, plan=new_plan,
                               eval_plan=patched)
        for threads in (1, 2, 4):
            fmm.evaluator.configure_threads(threads)
            try:
                out = fmm.evaluate(new_pts, dens, plan=new_plan,
                                   eval_plan=patched)
            finally:
                fmm.evaluator.configure_threads(None)
            assert np.array_equal(out, ref)


class TestConcurrentServe:
    def test_concurrent_batches_on_shared_pool_bitwise(self):
        from repro.serve import ServeEngine

        pts = uniform_cube(500, seed=43)
        fmm = Fmm("laplace", order=ORDER, max_points_per_box=BOX)
        eng = ServeEngine(n_workers=2, max_batch=4, max_wait_ms=5.0,
                          threads=2)
        assert eng.task_pool is not None
        model = eng.register("m", fmm, pts)
        assert model.fmm.evaluator.task_pool is eng.task_pool
        rng = np.random.default_rng(81)
        densities = [rng.standard_normal(len(pts)) for _ in range(12)]
        ep = model.fmm.compile_eval_plan(model.geometry.plan)
        refs = [
            model.fmm.evaluate(pts, d, plan=model.geometry.plan,
                               eval_plan=ep)
            for d in densities
        ]
        with eng:
            reqs = [eng.submit("m", d) for d in densities]
            outs = [r.result(timeout=60.0) for r in reqs]
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)
        snap = eng.metrics.snapshot()
        assert "pools" in snap
        assert snap["pools"]["task_pool"]["threads"] == 2
        assert snap["pools"]["task_pool"]["tiles_run"] > 0
        assert snap["pools"]["workers"]["workers"] == 2

    def test_engine_without_threads_keeps_serial_path(self):
        from repro.serve import ServeEngine

        eng = ServeEngine(n_workers=1)
        assert eng.task_pool is None
        snap = eng.metrics.snapshot()
        assert snap["pools"]["workers"]["workers"] == 1
        assert "task_pool" not in snap["pools"]


class TestDeterminismReplay:
    def test_same_seed_different_schedule_same_signature(self, geometry):
        tree, lists = geometry
        kern = get_kernel("laplace")
        dens = _density(kern, tree.n_points)

        def traced_run():
            ev = FmmEvaluator(kern, ORDER)
            plan = ev.compile_plan(tree, lists)
            ev.configure_threads(4)
            rec = TraceRecorder()
            prof = PhaseProfile()
            prof.bind_trace(rec, 0)
            out = ev.evaluate(tree, lists, dens, prof, plan=plan)
            ev.configure_threads(None)
            return out, rec.signature()

        out1, sig1 = traced_run()
        out2, sig2 = traced_run()
        assert np.array_equal(out1, out2)
        assert sig1 == sig2

    def test_distributed_signature_replay(self):
        pts = uniform_cube(700, seed=44)

        def run_once():
            res = run_spmd(2, _dist_body, pts, "laplace", "fp64", 4,
                           timeout=560, trace=True)
            return res.trace.signature()

        assert run_once() == run_once()


class TestParallelSpans:
    def test_spans_and_report(self, geometry):
        tree, lists = geometry
        kern = get_kernel("laplace")
        ev = FmmEvaluator(kern, ORDER)
        plan = ev.compile_plan(tree, lists)
        dens = _density(kern, tree.n_points)
        ev.configure_threads(2)
        rec = TraceRecorder()
        prof = PhaseProfile()
        prof.bind_trace(rec, 0)
        try:
            ev.evaluate(tree, lists, dens, prof, plan=plan)
        finally:
            ev.configure_threads(None)
        phases = {
            e.phase for e in rec.span_events()
            if e.phase.startswith("PARALLEL:")
        }
        assert "PARALLEL:S2U" in phases
        assert "PARALLEL:busy:S2U" in phases
        assert "PARALLEL:ULI" in phases
        report = parallel_report(rec)
        assert "overall" in report
        for name, st in report["phases"].items():
            assert st["threads"] == 2
            assert st["tiles"] >= 1
            assert 0.0 < st["achieved"] <= 2.0 + 1e-9
            assert 1.0 <= st["modelled"] <= 2.0
        assert report["overall"]["achieved"] > 0.0

    def test_serial_run_emits_no_parallel_spans(self, geometry):
        tree, lists = geometry
        kern = get_kernel("laplace")
        ev = FmmEvaluator(kern, ORDER)
        plan = ev.compile_plan(tree, lists)
        rec = TraceRecorder()
        prof = PhaseProfile()
        prof.bind_trace(rec, 0)
        ev.evaluate(tree, lists, _density(kern, tree.n_points), prof,
                    plan=plan)
        assert not any(
            e.phase.startswith("PARALLEL:") for e in rec.span_events()
        )
        assert parallel_report(rec) == {"phases": {}}


class TestSmokePerf:
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="single-core host: no parallel speedup to bound",
    )
    def test_two_threads_not_slower_than_serial(self):
        pts = uniform_cube(2_000, seed=45)
        fmm = Fmm("laplace", order=ORDER, max_points_per_box=64)
        plan = fmm.plan(pts)
        ep = fmm.compile_eval_plan(plan)
        dens = np.random.default_rng(91).standard_normal(len(pts))

        def best_of(reps):
            best = np.inf
            for _ in range(reps):
                t0 = time.perf_counter()
                fmm.evaluate(pts, dens, plan=plan, eval_plan=ep)
                best = min(best, time.perf_counter() - t0)
            return best

        with limit_blas_threads(1):
            fmm.evaluate(pts, dens, plan=plan, eval_plan=ep)  # warm
            serial = best_of(5)
        fmm.evaluator.configure_threads(2)
        try:
            fmm.evaluate(pts, dens, plan=plan, eval_plan=ep)  # warm pool
            parallel = best_of(5)
        finally:
            fmm.evaluator.configure_threads(None)
        assert parallel <= serial * 1.1, (
            f"2-thread apply {parallel * 1e3:.1f}ms vs serial "
            f"{serial * 1e3:.1f}ms exceeds the 1.1x smoke bound"
        )
