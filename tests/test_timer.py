"""Tests for the phase-profile accounting."""

import pytest

from repro.util.timer import PhaseProfile


class TestPhaseProfile:
    def test_phase_times_and_nesting(self):
        prof = PhaseProfile()
        with prof.phase("outer"):
            prof.add_flops(10)
            with prof.phase("inner"):
                prof.add_flops(5)
        assert prof.events["outer"].flops == 10
        assert prof.events["inner"].flops == 5
        assert prof.events["outer"].wall_seconds >= prof.events["inner"].wall_seconds

    def test_add_outside_phase_goes_to_untimed(self):
        prof = PhaseProfile()
        prof.add_flops(3)
        assert prof.events["untimed"].flops == 3

    def test_explicit_phase_attribution(self):
        prof = PhaseProfile()
        prof.add_flops(7, phase="custom")
        prof.add_message(100, 1e-6, phase="custom")
        ev = prof.events["custom"]
        assert ev.flops == 7
        assert ev.comm_messages == 1
        assert ev.comm_bytes == 100
        assert ev.comm_seconds == pytest.approx(1e-6)

    def test_merge(self):
        a, b = PhaseProfile(), PhaseProfile()
        a.add_flops(1, phase="x")
        b.add_flops(2, phase="x")
        b.add_flops(4, phase="y")
        a.merge(b)
        assert a.events["x"].flops == 3
        assert a.events["y"].flops == 4
        assert a.total_flops() == 7

    def test_as_table(self):
        prof = PhaseProfile()
        prof.add_flops(2, phase="p1")
        rows = prof.as_table()
        assert rows[0][0] == "p1"
        assert rows[0][2] == 2
