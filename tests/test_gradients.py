"""Tests for gradient (force) evaluation via the dual-kernel path."""

import numpy as np
import pytest

from repro.core import Fmm
from repro.core.evaluator import FmmEvaluator
from repro.datasets import plummer_cluster, uniform_cube
from repro.kernels import get_kernel
from repro.kernels.gradients import LaplaceGradientKernel


class TestGradientKernel:
    def test_matches_finite_difference(self, rng):
        k = get_kernel("laplace")
        gk = LaplaceGradientKernel()
        x = np.array([[0.3, 0.4, 0.5]])
        y = rng.random((6, 3))
        dens = rng.standard_normal(6)
        h = 1e-6
        grad_fd = np.empty(3)
        for a in range(3):
            xp, xm = x.copy(), x.copy()
            xp[0, a] += h
            xm[0, a] -= h
            grad_fd[a] = (
                (k.matrix(xp, y) - k.matrix(xm, y)) @ dens / (2 * h)
            )[0]
        grad = gk.matrix(x, y) @ dens
        np.testing.assert_allclose(grad, grad_fd, rtol=1e-5)

    def test_homogeneity_degree(self, rng):
        gk = LaplaceGradientKernel()
        t, s = rng.random((4, 3)), rng.random((5, 3))
        np.testing.assert_allclose(
            gk.matrix(2 * t, 2 * s), 0.25 * gk.matrix(t, s)
        )

    def test_batch_matches_loop(self, rng):
        gk = LaplaceGradientKernel()
        t = rng.random((3, 5, 3))
        s = rng.random((3, 4, 3))
        batched = gk.matrix_batch(t, s)
        for i in range(3):
            np.testing.assert_allclose(batched[i], gk.matrix(t[i], s[i]))


class TestGradientFmm:
    def test_field_matches_direct(self):
        pts = uniform_cube(1200, seed=5)
        dens = np.random.default_rng(0).standard_normal(1200)
        fmm = Fmm("laplace", order=6, max_points_per_box=40,
                  eval_kernel=LaplaceGradientKernel())
        g = fmm.evaluate(pts, dens)
        ref = LaplaceGradientKernel().apply(pts, pts, dens)
        assert np.linalg.norm(g - ref) / np.linalg.norm(ref) < 5e-4
        assert g.shape == (3600,)

    def test_clustered_distribution(self):
        pts = plummer_cluster(1000, seed=6)
        dens = np.abs(np.random.default_rng(1).standard_normal(1000))
        fmm = Fmm("laplace", order=6, max_points_per_box=30,
                  eval_kernel=LaplaceGradientKernel())
        g = fmm.evaluate(pts, dens)
        ref = LaplaceGradientKernel().apply(pts, pts, dens)
        assert np.linalg.norm(g - ref) / np.linalg.norm(ref) < 5e-4

    def test_gradient_at_separate_targets(self):
        src = uniform_cube(800, seed=7)
        tgt = uniform_cube(150, seed=8)
        dens = np.random.default_rng(2).standard_normal(800)
        fmm = Fmm("laplace", order=6, max_points_per_box=40,
                  eval_kernel=LaplaceGradientKernel())
        g = fmm.evaluate_targets(src, dens, tgt)
        ref = LaplaceGradientKernel().apply(tgt, src, dens)
        assert np.linalg.norm(g - ref) / np.linalg.norm(ref) < 5e-4

    def test_source_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="source_dim"):
            FmmEvaluator(
                get_kernel("stokes"), 4, eval_kernel=LaplaceGradientKernel()
            )

    def test_newton_third_law(self):
        """Total momentum change of equal-mass pairs ~ 0 (forces cancel)."""
        pts = uniform_cube(600, seed=9)
        mass = np.full(600, 1.0 / 600)
        fmm = Fmm("laplace", order=8, max_points_per_box=40,
                  eval_kernel=LaplaceGradientKernel())
        g = fmm.evaluate(pts, mass).reshape(-1, 3)
        force = -mass[:, None] * g  # attraction
        total = np.abs(force.sum(axis=0)).max()
        scale = np.abs(force).max()
        assert total < 1e-4 * scale * 600
