"""Tests for the synthetic particle distributions."""

import numpy as np
import pytest

from repro.datasets import (
    ellipsoid_surface,
    make_distribution,
    plummer_cluster,
    uniform_cube,
)


class TestDistributions:
    @pytest.mark.parametrize("name", ["uniform", "ellipsoid", "plummer"])
    def test_inside_unit_cube(self, name):
        pts = make_distribution(name, 5000, seed=3)
        assert pts.shape == (5000, 3)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_reproducible(self):
        a = uniform_cube(100, seed=9)
        b = uniform_cube(100, seed=9)
        np.testing.assert_array_equal(a, b)
        c = uniform_cube(100, seed=10)
        assert not np.array_equal(a, c)

    def test_ellipsoid_on_surface(self):
        pts = ellipsoid_surface(2000, seed=1) - 0.5
        val = (pts[:, 0] / 0.1) ** 2 + (pts[:, 1] / 0.1) ** 2 + (
            pts[:, 2] / 0.4
        ) ** 2
        np.testing.assert_allclose(val, 1.0, atol=1e-9)

    def test_ellipsoid_aspect_ratio(self):
        pts = ellipsoid_surface(5000, seed=2) - 0.5
        assert pts[:, 2].max() / pts[:, 0].max() > 3.0

    def test_ellipsoid_pole_concentration(self):
        """Uniform angle spacing concentrates points at the poles."""
        pts = ellipsoid_surface(20000, seed=4)
        near_pole = np.abs(pts[:, 2] - 0.5) > 0.35
        assert near_pole.mean() > 0.3  # far denser than area-uniform

    def test_plummer_core_density(self):
        pts = plummer_cluster(20000, seed=5)
        r = np.linalg.norm(pts - 0.5, axis=1)
        assert (r < 0.06).mean() > 0.3  # dense core

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_distribution("spiral", 10)


class TestExtraDistributions:
    @pytest.mark.parametrize("name", ["two_spheres", "filament"])
    def test_inside_unit_cube(self, name):
        pts = make_distribution(name, 3000, seed=7)
        assert pts.shape == (3000, 3)
        assert np.all(pts > 0.0) and np.all(pts < 1.0)

    def test_two_spheres_are_separated(self):
        from repro.datasets import two_spheres

        pts = two_spheres(4000, seed=8) - 0.5
        # each point is near one of the two shell centres
        d1 = np.linalg.norm(pts - (np.array([0.27, 0.27, 0.27]) - 0.5), axis=1)
        d2 = np.linalg.norm(pts - (np.array([0.73, 0.73, 0.73]) - 0.5), axis=1)
        assert np.all(np.minimum(d1, d2) < 0.13)
        assert (d1 < d2).mean() == pytest.approx(0.5, abs=0.02)

    def test_filament_is_deep(self):
        from repro.datasets import filament
        from repro.octree import points_to_octree
        from repro.util import morton

        uni = points_to_octree(make_distribution("uniform", 3000, 9), 25)
        fil = points_to_octree(filament(3000, seed=9), 25)
        assert morton.level(fil.leaves).max() > morton.level(uni.leaves).max() + 2

    def test_fmm_accurate_on_extras(self):
        from repro.core import Fmm
        from repro.kernels import direct_sum, get_kernel

        kern = get_kernel("laplace")
        for name in ("two_spheres", "filament"):
            pts = make_distribution(name, 1500, seed=10)
            dens = np.random.default_rng(3).standard_normal(1500)
            f = Fmm(kern, order=6, max_points_per_box=30).evaluate(pts, dens)
            ref = direct_sum(kern, pts, pts, dens)
            err = np.linalg.norm(f - ref) / np.linalg.norm(ref)
            assert err < 5e-5, name
