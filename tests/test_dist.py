"""Tests for distributed FMM components: geometry, build, LET, reduction.

End-to-end distributed accuracy lives in ``test_dist_fmm.py``.
"""

import numpy as np
import pytest

from repro.core.lists import build_lists
from repro.core.tree import tree_from_leaves
from repro.datasets import ellipsoid_surface, uniform_cube
from repro.dist.build import distributed_points_to_octree
from repro.dist.geometry import RankGeometry, cell_range
from repro.dist.let import build_let
from repro.dist.reduce_scatter import (
    hypercube_reduce_scatter,
    owner_reduce_scatter,
)
from repro.mpi import run_spmd
from repro.octree import is_complete
from repro.util import morton


class TestRankGeometry:
    def _geom(self):
        n_cells = 1 << (3 * morton.MAX_DEPTH)
        return RankGeometry(
            np.array([0, n_cells // 4, n_cells // 2, 3 * n_cells // 4, n_cells])
        )

    def test_rank_interval_single(self):
        g = self._geom()
        n_cells = 1 << (3 * morton.MAX_DEPTH)
        r0, r1 = g.rank_interval(np.array([0]), np.array([1]))
        assert (r0[0], r1[0]) == (0, 1)
        r0, r1 = g.rank_interval(np.array([0]), np.array([n_cells]))
        assert (r0[0], r1[0]) == (0, 4)

    def test_cell_range_of_root_covers_cube(self):
        lo, hi = cell_range(np.array([morton.ROOT], dtype=np.uint64))
        assert lo[0] == 0 and hi[0] == 1 << (3 * morton.MAX_DEPTH)

    def test_owner_of_octants(self):
        g = self._geom()
        kids = morton.children(np.array([morton.ROOT], dtype=np.uint64))[0]
        owners = g.owner_of_octants(kids)
        # 8 children in Morton order -> 2 per quarter
        np.testing.assert_array_equal(owners, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_root_is_shared_everywhere(self):
        g = self._geom()
        root = np.array([morton.ROOT], dtype=np.uint64)
        for r in range(4):
            assert g.is_shared(root, r)[0]

    def test_deep_interior_octant_not_shared(self):
        g = self._geom()
        # a deep octant in the middle of rank 0's domain
        x = 1 << (morton.MAX_DEPTH - 4)
        deep = np.array(
            [morton.make_oct(x, x, x, 8)], dtype=np.uint64
        )
        assert not g.is_shared(deep, 0)[0]
        assert g.is_shared(deep, 1)[0]  # from rank 1's view: others involved

    def test_user_pairs_cover_parent_neighborhood(self):
        g = self._geom()
        kids = morton.children(np.array([morton.ROOT], dtype=np.uint64))[0]
        grand = morton.children(kids[:1])[0]
        rows, ranks = g.user_pairs(grand)
        # the parent (child 0 of root) neighbourhood touches every octant
        # of the root, so all 4 ranks use these octants
        assert set(ranks.tolist()) == {0, 1, 2, 3}


class TestDistributedBuild:
    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("dist", ["uniform", "ellipsoid"])
    def test_union_is_complete_octree(self, p, dist):
        pts = {"uniform": uniform_cube, "ellipsoid": ellipsoid_surface}[dist](
            3000, seed=11
        )

        def fn(comm):
            d = distributed_points_to_octree(comm, pts[comm.rank :: comm.size], 30)
            lo, hi = cell_range(d.leaves)
            assert lo.min() >= d.geometry.bounds[comm.rank]
            assert hi.max() <= d.geometry.bounds[comm.rank + 1]
            begin = np.searchsorted(
                d.point_keys, morton.deepest_first_descendant(d.leaves)
            )
            end = np.searchsorted(
                d.point_keys,
                morton.deepest_last_descendant(d.leaves),
                side="right",
            )
            assert (end - begin).max() <= 30
            return d.leaves, len(d.points)

        res = run_spmd(p, fn, timeout=300)
        union = np.sort(np.concatenate([v[0] for v in res.values]))
        assert is_complete(union)
        assert sum(v[1] for v in res.values) == 3000

    def test_single_rank_matches_sequential_counts(self):
        pts = uniform_cube(1000, seed=2)

        def fn(comm):
            d = distributed_points_to_octree(comm, pts, 40)
            return d.leaves

        from repro.octree import points_to_octree

        res = run_spmd(1, fn, timeout=120)
        seq = points_to_octree(pts, 40)
        np.testing.assert_array_equal(res.values[0], seq.leaves)


class TestLetClosure:
    """Every interaction partner of an owned node must be in the LET."""

    @pytest.mark.parametrize("dist", ["uniform", "ellipsoid"])
    def test_closure(self, dist):
        pts = {"uniform": uniform_cube, "ellipsoid": ellipsoid_surface}[dist](
            2000, seed=13
        )

        def fn(comm):
            d = distributed_points_to_octree(comm, pts[comm.rank :: comm.size], 25)
            let = build_let(comm, d.geometry, d.leaves, d.points, d.point_keys)
            return d.leaves, let.tree.keys.copy(), let.owned_leaf.sum()

        p = 4
        res = run_spmd(p, fn, timeout=300)
        union = np.sort(np.concatenate([v[0] for v in res.values]))
        keys = morton.encode_points(pts)
        order = np.argsort(keys, kind="stable")
        gtree = tree_from_leaves(union, pts[order], keys[order], order)
        glists = build_lists(gtree)
        for rk, (leaves, let_keys, n_owned) in enumerate(res.values):
            assert n_owned == leaves.size
            have = set(let_keys.tolist())
            own_nodes = gtree.find(
                np.union1d(leaves, morton.ancestors_of(leaves))
            )
            for csr in (glists.u, glists.v, glists.w, glists.x):
                for i in own_nodes:
                    for j in csr.of(i):
                        assert int(gtree.keys[j]) in have


def _synthetic_shared(comm, geometry, width=4):
    """Each rank contributes partials for the top two tree levels."""
    root = np.array([morton.ROOT], dtype=np.uint64)
    octs = np.concatenate([root, morton.children(root)[0]])
    rng = np.random.default_rng(comm.rank)
    dens = rng.standard_normal((octs.size, width))
    # only contribute octants overlapping own domain (as the driver does)
    lo, hi = cell_range(octs)
    mine = (lo < geometry.bounds[comm.rank + 1]) & (hi > geometry.bounds[comm.rank])
    return octs[mine], dens[mine]


class TestReduceScatter:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_hypercube_equals_owner_equals_serial(self, p):
        n_cells = 1 << (3 * morton.MAX_DEPTH)
        bounds = np.linspace(0, n_cells, p + 1).astype(np.int64)
        geometry = RankGeometry(bounds)

        def fn(comm, scheme):
            keys, dens = _synthetic_shared(comm, geometry)
            fn_ = (
                hypercube_reduce_scatter
                if scheme == "hypercube"
                else owner_reduce_scatter
            )
            out_keys, out_dens = fn_(comm, geometry, keys, dens)
            return keys, dens, out_keys, out_dens

        res_h = run_spmd(p, fn, "hypercube", timeout=300)
        res_o = run_spmd(p, fn, "owner", timeout=300)

        # serial reference: sum partials per key over all ranks
        ref = {}
        for keys, dens, _, _ in res_h.values:
            for k, d in zip(keys, dens):
                ref[int(k)] = ref.get(int(k), 0) + d
        for res in (res_h, res_o):
            for keys, dens, out_keys, out_dens in res.values:
                # every contributed octant is used by everyone here
                # (top levels); check the returned sums
                for k, d in zip(out_keys, out_dens):
                    np.testing.assert_allclose(d, ref[int(k)], atol=1e-12)
                # all inserted octants whose users include this rank return
                assert set(map(int, keys)) <= set(map(int, out_keys))

    def test_hypercube_rejects_non_power_of_two(self):
        geometry = RankGeometry(
            np.linspace(0, 1 << (3 * morton.MAX_DEPTH), 4).astype(np.int64)
        )

        def fn(comm):
            hypercube_reduce_scatter(
                comm, geometry, np.empty(0, np.uint64), np.empty((0, 2))
            )

        with pytest.raises(RuntimeError, match="power-of-two"):
            run_spmd(3, fn, timeout=60)


class TestGeometryConsistency:
    """user_pairs and user_overlaps_range must agree: they are the two
    faces of the same user-region predicate (LET sends vs Alg 3 filters)."""

    def test_pairs_match_range_predicate(self, rng):
        n_cells = 1 << (3 * morton.MAX_DEPTH)
        p = 8
        bounds = np.sort(
            np.concatenate(
                [[0, n_cells], rng.integers(1, n_cells, p - 1)]
            )
        ).astype(np.int64)
        if len(np.unique(bounds)) != p + 1:
            bounds = np.linspace(0, n_cells, p + 1).astype(np.int64)
        g = RankGeometry(bounds)
        keys = morton.encode_points(rng.random((40, 3)))
        octs = morton.ancestor_at(keys, np.full(40, 4))
        rows, ranks = g.user_pairs(octs)
        users = {i: set() for i in range(40)}
        for i, r in zip(rows, ranks):
            users[int(i)].add(int(r))
        for k in range(p):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            if lo == hi:
                continue
            mask = g.user_overlaps_range(octs, lo, hi)
            for i in range(40):
                assert mask[i] == (k in users[i]), (i, k)
