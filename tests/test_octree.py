"""Tests for linear-octree operations, construction and partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import (
    balance_2to1,
    build_leaves,
    complete_region,
    is_2to1_balanced,
    is_complete,
    partition_bounds,
    points_to_octree,
    remove_ancestors,
    split_by_weights,
)
from repro.octree.linear import (
    coarsest_common_ancestor,
    covering_leaf_indices,
    fill_cell_range,
    is_sorted_unique,
)
from repro.octree.partition import rank_of_index
from repro.util import morton
from repro.datasets import ellipsoid_surface, uniform_cube


class TestLinearOps:
    def test_remove_ancestors_drops_parents(self, rng):
        keys = morton.encode_points(rng.random((200, 3)), depth=6)
        keys = np.unique(keys)
        withparents = np.concatenate([keys, morton.parent(keys)])
        out = remove_ancestors(withparents)
        np.testing.assert_array_equal(out, keys)

    def test_remove_ancestors_keeps_disjoint(self, rng):
        keys = np.unique(morton.encode_points(rng.random((50, 3)), depth=4))
        np.testing.assert_array_equal(remove_ancestors(keys), keys)

    def test_fill_cell_range_whole_cube(self):
        out = fill_cell_range(0, 1 << (3 * morton.MAX_DEPTH))
        assert out.size == 1 and out[0] == morton.ROOT

    @given(st.integers(0, 4000), st.integers(0, 4000))
    @settings(max_examples=100, deadline=None)
    def test_fill_cell_range_covers_exactly(self, a, b):
        lo, hi = sorted((a, b))
        out = fill_cell_range(lo, hi)
        assert is_sorted_unique(out)
        # total cells covered equals the range length
        sizes = 8 ** (morton.MAX_DEPTH - morton.level(out))
        assert sizes.sum() == hi - lo

    def test_complete_region_fills_gap(self):
        root = np.array([morton.ROOT], dtype=np.uint64)
        kids = morton.children(root)[0]
        grand_first = morton.children(kids[:1])[0]
        grand_last = morton.children(kids[-1:])[0]
        a, b = grand_first[0], grand_last[-1]
        region = complete_region(a, b)
        full = np.sort(np.concatenate([[a], region, [b]]))
        assert is_complete(full)

    def test_complete_region_rejects_nested(self):
        root = np.uint64(morton.ROOT)
        kid = morton.children(np.array([root]))[0][0]
        with pytest.raises(ValueError):
            complete_region(root, kid)

    def test_coarsest_common_ancestor(self):
        kids = morton.children(np.array([morton.ROOT], dtype=np.uint64))[0]
        g0 = morton.children(kids[:1])[0]
        assert coarsest_common_ancestor(g0[0], g0[1]) == kids[0]
        assert coarsest_common_ancestor(g0[0], kids[5]) == morton.ROOT

    def test_covering_leaf_indices(self, rng):
        ob = points_to_octree(rng.random((500, 3)), 40)
        queries = morton.children(ob.leaves[morton.level(ob.leaves) < morton.MAX_DEPTH][::5]).ravel()
        cov = covering_leaf_indices(ob.leaves, queries)
        assert np.all(cov >= 0)
        assert morton.is_ancestor_or_equal(ob.leaves[cov], queries).all()
        # a coarser query octant is not covered by any single leaf
        coarse = morton.parent(ob.leaves[morton.level(ob.leaves) > 2][:4])
        cov2 = covering_leaf_indices(ob.leaves, coarse)
        assert np.all(cov2 == -1)


class TestBuild:
    def test_counts_and_completeness(self, any_points):
        ob = points_to_octree(any_points, 25)
        assert is_complete(ob.leaves)
        assert ob.leaf_counts.sum() == len(any_points)
        assert ob.leaf_counts.max() <= 25

    def test_sorted_points_match_leaf_ranges(self, uniform_points):
        ob = points_to_octree(uniform_points, 30)
        sorted_keys = ob.point_keys
        assert np.all(np.diff(sorted_keys.astype(np.float64)) >= 0)
        for i in np.flatnonzero(ob.leaf_counts)[:50]:
            lo = morton.deepest_first_descendant(ob.leaves[i : i + 1])[0]
            hi = morton.deepest_last_descendant(ob.leaves[i : i + 1])[0]
            chunk = sorted_keys[ob.leaf_begin[i] : ob.leaf_end[i]]
            assert np.all((chunk >= lo) & (chunk <= hi))

    def test_max_depth_cap(self):
        pts = np.full((100, 3), 0.3)  # all identical: cannot separate
        ob = points_to_octree(pts, 5, max_depth=4)
        assert morton.level(ob.leaves).max() <= 4
        assert ob.leaf_counts.max() == 100

    def test_single_point(self):
        ob = points_to_octree(np.array([[0.7, 0.2, 0.9]]), 10)
        assert ob.leaves.size == 1
        assert ob.leaves[0] == morton.ROOT

    def test_deeper_refinement_for_clusters(self):
        uni = points_to_octree(uniform_cube(2000, 5), 25)
        ell = points_to_octree(ellipsoid_surface(2000, 5), 25)
        assert morton.level(ell.leaves).max() > morton.level(uni.leaves).max()

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            build_leaves(np.array([], dtype=np.uint64), 0)


class TestPartition:
    def test_partition_bounds_even(self):
        b = partition_bounds(10, 3)
        np.testing.assert_array_equal(b, [0, 4, 7, 10])

    def test_partition_bounds_more_parts_than_items(self):
        b = partition_bounds(2, 4)
        assert b[0] == 0 and b[-1] == 2 and len(b) == 5
        assert np.all(np.diff(b) >= 0)

    @given(st.integers(1, 16), st.integers(0, 500))
    @settings(max_examples=100, deadline=None)
    def test_partition_bounds_properties(self, parts, total):
        b = partition_bounds(total, parts)
        assert len(b) == parts + 1
        assert b[0] == 0 and b[-1] == total
        sizes = np.diff(b)
        assert sizes.max() - sizes.min() <= 1

    def test_split_by_weights_balances(self, rng):
        w = rng.random(997) ** 3  # skewed
        b = split_by_weights(w, 8)
        per = np.array([w[b[i] : b[i + 1]].sum() for i in range(8)])
        assert per.max() <= w.sum() / 8 + w.max()

    def test_split_by_weights_degenerate(self):
        b = split_by_weights(np.zeros(10), 4)
        assert b[0] == 0 and b[-1] == 10
        b2 = split_by_weights(np.array([]), 4)
        assert np.all(b2 == 0)

    def test_split_rejects_negative(self):
        with pytest.raises(ValueError):
            split_by_weights(np.array([1.0, -2.0]), 2)

    def test_rank_of_index(self):
        b = np.array([0, 4, 7, 10])
        np.testing.assert_array_equal(
            rank_of_index(b, [0, 3, 4, 6, 7, 9]), [0, 0, 1, 1, 2, 2]
        )


class TestBalance:
    def test_balance_ellipsoid(self):
        ob = points_to_octree(ellipsoid_surface(1500, 4), 20)
        assert not is_2to1_balanced(ob.leaves)
        bal = balance_2to1(ob.leaves)
        assert is_complete(bal)
        assert is_2to1_balanced(bal)
        # original leaves are preserved or refined, never coarsened
        cov = covering_leaf_indices(bal, ob.leaves)
        finer_or_same = cov == -1  # refined away
        assert np.all(finer_or_same | np.isin(ob.leaves, bal))

    def test_balanced_tree_is_fixed_point(self):
        ob = points_to_octree(uniform_cube(1000, 9), 40)
        bal = balance_2to1(ob.leaves)
        np.testing.assert_array_equal(balance_2to1(bal), bal)

    def test_rejects_incomplete(self):
        with pytest.raises(ValueError):
            balance_2to1(np.array([morton.make_oct(0, 0, 0, 1)], dtype=np.uint64))
