"""Tests for octant physical geometry."""

import numpy as np

from repro.util import geometry, morton


class TestBoxGeometry:
    def test_root_center_and_half_width(self):
        c = geometry.box_center(np.array([morton.ROOT]))
        np.testing.assert_allclose(c, [[0.5, 0.5, 0.5]])
        assert geometry.box_half_width(0) == 0.5

    def test_half_width_halves_per_level(self):
        levels = np.arange(10)
        hw = geometry.box_half_width(levels)
        np.testing.assert_allclose(hw[1:] / hw[:-1], 0.5)

    def test_children_centers_offset(self):
        root = np.array([morton.ROOT], dtype=np.uint64)
        kids = morton.children(root)[0]
        centers = geometry.box_center(kids)
        # all eight (+-0.25) offsets around the root centre
        assert set(np.unique((centers - 0.5).round(6))) == {-0.25, 0.25}
        assert len(np.unique(centers, axis=0)) == 8

    def test_corners_contain_encoded_points(self, rng):
        pts = rng.random((300, 3))
        keys = morton.encode_points(pts)
        boxes = morton.ancestor_at(keys, np.full(300, 4))
        lo, hi = geometry.box_corners(boxes)
        assert np.all(pts >= lo - 1e-12)
        assert np.all(pts <= hi + 1e-12)

    def test_corner_sizes(self):
        box = morton.make_oct(0, 0, 0, 3)
        lo, hi = geometry.box_corners(np.array([box], dtype=np.uint64))
        np.testing.assert_allclose(hi - lo, 2.0 ** -3)

    def test_points_to_box_frame(self, rng):
        pts = rng.random((50, 3)) * 0.125  # inside the level-3 corner box
        box = morton.make_oct(0, 0, 0, 3)
        local = geometry.points_to_box_frame(pts, box)
        assert np.all(np.abs(local) <= 1.0 + 1e-12)
